package chaos

import (
	"fmt"
	"math/rand"

	"switchfs/internal/env"
)

// Geometry names the deployed shape a plan is authored against.
type Geometry struct {
	Servers  int
	Clients  int
	Switches int
	// DataNodes sizes the data plane; zero keeps plans metadata-only.
	DataNodes int
	// DataReplication is the data plane's replication factor r (default 2).
	// Data-fault plans keep concurrent data-node failures at r−1 so that an
	// acknowledged content write is always expected to survive.
	DataReplication int
}

// DefaultGeometry is the paper's evaluation setup (§7.1) plus a four-node
// replicated data plane for the end-to-end content path (§7.6).
func DefaultGeometry() Geometry {
	return Geometry{Servers: 8, Clients: 4, Switches: 1, DataNodes: 4, DataReplication: 2}
}

const ms = env.Millisecond

// BuiltinPlans returns the curated scenario catalog for a geometry: the
// §5.4/§7.7 recovery stories plus the failure modes they leave unexplored —
// partitions (symmetric, asymmetric, rack-correlated), flaky links, gray
// failures, and reconfiguration racing a crash.
func BuiltinPlans(g Geometry) []Plan {
	rack := func(lo, hi int) []int { // server indices [lo, hi)
		var out []int
		for i := lo; i < hi && i < g.Servers; i++ {
			out = append(out, i)
		}
		return out
	}
	half := g.Servers / 2
	if half == 0 {
		half = 1
	}
	plans := []Plan{
		{
			Name:    "server-crash",
			Desc:    "fail-stop one server under load, recover from its WAL (§5.4.2)",
			Horizon: 8 * ms,
			Events: []Event{
				CrashServer(1*ms, 1),
				RecoverServer(4*ms, 1),
			},
		},
		{
			Name:    "switch-reboot",
			Desc:    "lose all dirty-set state, flush change-logs to re-converge (§5.4.2)",
			Horizon: 8 * ms,
			Events: []Event{
				CrashSwitch(2 * ms),
				RecoverSwitch(3 * ms),
			},
		},
		{
			Name:    "rack-partition",
			Desc:    "cut one server rack off from the rest of the cluster, then heal",
			Horizon: 8 * ms,
			Events: []Event{
				Partition(1*ms, "rack",
					NodeSel{Servers: rack(half, g.Servers)},
					NodeSel{Servers: rack(0, half), AllClients: true, AllSwitches: true},
					false),
				Heal(3500*env.Microsecond, "rack"),
			},
		},
		{
			Name:    "asym-partition",
			Desc:    "asymmetric fault: client 0's requests to server 1 vanish, replies flow",
			Horizon: 8 * ms,
			Events: []Event{
				Partition(1*ms, "asym",
					NodeSel{Clients: []int{0}},
					NodeSel{Servers: []int{1}},
					true),
				Heal(4*ms, "asym"),
			},
		},
		{
			Name:    "flaky-links",
			Desc:    "loss, duplication and reorder on every client-server link (§5.4.1)",
			Horizon: 8 * ms,
			Events: []Event{
				LinkFault(1*ms, "flaky",
					NodeSel{AllClients: true},
					NodeSel{AllServers: true},
					Rule{Drop: 0.1, Dup: 0.1, Jitter: 5 * env.Microsecond}),
				Heal(6*ms, "flaky"),
			},
		},
		{
			Name:    "gray",
			Desc:    "gray failures: one server loses cores, one switch pipe slows",
			Horizon: 8 * ms,
			Events: []Event{
				DegradeServer(1*ms, 0, 1),
				SlowSwitch(1*ms, 0, 4*env.Microsecond),
				RestoreServer(6*ms, 0),
				RestoreSwitch(6*ms, 0),
			},
		},
		{
			Name:    "reconfig-crash",
			Desc:    "grow the cluster while a server fail-stops and recovers mid-flight (§5.5)",
			Horizon: 10 * ms,
			Events: []Event{
				CrashServer(900*env.Microsecond, 2),
				Reconfigure(1*ms, g.Servers+2),
				RecoverServer(2*ms, 2),
			},
		},
	}
	if g.DataNodes > 0 {
		// Data-fault catalog: ≤ r−1 concurrent data-node failures, so every
		// acknowledged content write must survive (the data oracle's core
		// guarantee). Rolling crashes are sequenced, never overlapped.
		plans = append(plans,
			Plan{
				Name:    "data-crash",
				Desc:    "fail-stop one data node under striped writes; re-replicate on recovery (§7.6)",
				Horizon: 8 * ms,
				Events: []Event{
					CrashDataNode(1*ms, 1%g.DataNodes),
					RecoverDataNode(4*ms, 1%g.DataNodes),
				},
			},
			Plan{
				Name:    "data-rolling",
				Desc:    "crash and recover two data nodes back to back (replication carries each window)",
				Horizon: 10 * ms,
				Events: []Event{
					CrashDataNode(1*ms, 0),
					RecoverDataNode(3*ms, 0),
					CrashDataNode(5*ms, (g.DataNodes-1)%g.DataNodes),
					RecoverDataNode(7*ms, (g.DataNodes-1)%g.DataNodes),
				},
			},
			Plan{
				Name:    "data-flaky",
				Desc:    "duplication and reorder on every client↔data link (chunk RPC dedup, §5.4.1)",
				Horizon: 8 * ms,
				Events: []Event{
					LinkFault(1*ms, "dflaky",
						NodeSel{AllClients: true},
						NodeSel{AllDataNodes: true},
						Rule{Drop: 0.05, Dup: 0.2, Jitter: 5 * env.Microsecond}),
					Heal(6*ms, "dflaky"),
				},
			},
		)
	}
	return plans
}

// BuiltinPlan returns the named plan, or false.
func BuiltinPlan(g Geometry, name string) (Plan, bool) {
	for _, p := range BuiltinPlans(g) {
		if p.Name == name {
			return p, true
		}
	}
	return Plan{}, false
}

// RandomPlan generates a well-formed plan from a seed: a handful of
// fault/repair pairs with randomized targets, intensities and overlapping
// windows, every fault healed and every crash recovered before the horizon.
// The same seed and geometry always produce the same plan — the search-style
// entry point (`fsbench -fig chaos -seed N`) sweeps seeds to explore the
// scenario space.
func RandomPlan(seed int64, g Geometry, horizon env.Duration) Plan {
	rnd := rand.New(rand.NewSource(seed))
	p := Plan{
		Name:    fmt.Sprintf("random-%d", seed),
		Desc:    fmt.Sprintf("seeded random fault schedule (seed %d)", seed),
		Horizon: horizon,
	}
	// Fault windows live inside [horizon/8, horizon*3/4] so load exists on
	// both sides of every fault.
	window := func() (from, to env.Duration) {
		lo := horizon / 8
		hi := horizon * 3 / 4
		from = lo + env.Duration(rnd.Int63n(int64(hi-lo)))
		minLen := horizon / 16
		maxLen := horizon / 3
		to = from + minLen + env.Duration(rnd.Int63n(int64(maxLen-minLen)))
		if to > hi {
			to = hi
		}
		return from, to
	}
	crashed := map[int]bool{}
	// Data-node crash windows are serialized (dataBusyUntil): overlapping
	// windows could take a chunk's whole replica set down at once, and the
	// generator's contract is ≤ r−1 concurrent data failures so every
	// acknowledged content write must survive the plan.
	dataBusyUntil := env.Duration(0)
	kinds := 6
	if g.DataNodes > 0 {
		kinds = 7
	}
	n := 2 + rnd.Intn(3)
	for i := 0; i < n; i++ {
		from, to := window()
		switch rnd.Intn(kinds) {
		case 0: // crash/recover a server (each server at most once)
			s := rnd.Intn(g.Servers)
			if crashed[s] {
				continue
			}
			crashed[s] = true
			p.Events = append(p.Events, CrashServer(from, s), RecoverServer(to, s))
		case 1: // switch reboot
			p.Events = append(p.Events, CrashSwitch(from), RecoverSwitch(to))
		case 2: // partition a random server group off
			cut := 1 + rnd.Intn(max(1, g.Servers/2))
			var a, rest []int
			perm := rnd.Perm(g.Servers)
			for j, s := range perm {
				if j < cut {
					a = append(a, s)
				} else {
					rest = append(rest, s)
				}
			}
			name := fmt.Sprintf("part%d", i)
			p.Events = append(p.Events,
				Partition(from, name,
					NodeSel{Servers: a},
					NodeSel{Servers: rest, AllClients: true, AllSwitches: true},
					rnd.Intn(4) == 0),
				Heal(to, name))
		case 3: // flaky links
			name := fmt.Sprintf("flaky%d", i)
			p.Events = append(p.Events,
				LinkFault(from, name,
					NodeSel{AllClients: true},
					NodeSel{Servers: []int{rnd.Intn(g.Servers)}},
					Rule{
						Drop:   float64(rnd.Intn(3)) * 0.05,
						Dup:    float64(rnd.Intn(3)) * 0.05,
						Jitter: env.Duration(rnd.Intn(8)) * env.Microsecond,
					}),
				Heal(to, name))
		case 4: // degrade a server's cores
			s := rnd.Intn(g.Servers)
			p.Events = append(p.Events, DegradeServer(from, s, 1), RestoreServer(to, s))
		case 6: // crash/recover a data node (windows never overlap)
			if from <= dataBusyUntil {
				continue
			}
			d := rnd.Intn(g.DataNodes)
			// The node stays down PAST the recover event until its
			// re-replication pull completes; the margin keeps the next
			// window clear of that tail so concurrent data failures stay
			// at r−1 and the wipe taint never fires spuriously.
			dataBusyUntil = to + ms
			p.Events = append(p.Events, CrashDataNode(from, d), RecoverDataNode(to, d))
		default: // slow a switch pipe
			sw := rnd.Intn(max(1, g.Switches))
			p.Events = append(p.Events,
				SlowSwitch(from, sw, env.Duration(1+rnd.Intn(6))*env.Microsecond),
				RestoreSwitch(to, sw))
		}
	}
	if len(p.Events) == 0 {
		// Every draw collided (tiny geometry): fall back to one crash cycle.
		p.Events = append(p.Events,
			CrashServer(horizon/4, 0), RecoverServer(horizon/2, 0))
	}
	return p
}
