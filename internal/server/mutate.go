package server

import (
	"switchfs/internal/core"
	"switchfs/internal/env"
	"switchfs/internal/wal"
	"switchfs/internal/wire"
)

// handleMutate executes create, delete, mkdir (asynchronously per §5.2.1)
// and rmdir (aggregation-first per §5.2.3). The request is addressed to the
// owner of the target object's inode.
func (s *Server) handleMutate(p *env.Proc, req *wire.MutateReq) {
	p.Compute(s.cfg.Costs.Parse)
	if s.replayIfDuplicate(p, &req.ReqCommon) {
		return
	}
	if !s.begin(&req.ReqCommon) {
		return // in flight; the original execution will reply
	}
	s.Stats.Ops++
	s.tallyDir(req.Parent.ID)
	if req.Op == core.OpRmdir {
		s.doRmdir(p, req)
		return
	}
	s.doMutate(p, req)
}

// doMutate is the local half of create/delete/mkdir.
//
//detlint:wal-before-send recCommit via=syncCommit,asyncCommit
func (s *Server) doMutate(p *env.Proc, req *wire.MutateReq) {
	c := &s.cfg.Costs
	key := core.Key{PID: req.Parent.ID, Name: req.Name}
	parentLog := s.clogOf(req.Parent)

	// Locking (Fig. 4 step 2): shared lock on the parent's change-log —
	// concurrent updates to one directory commute — and an exclusive lock on
	// the target inode, which serializes create/delete of the same name.
	p.Compute(c.LockOp)
	parentLog.lock.RLock(p)
	kl := s.lockOf(key)
	kl.Lock(p)
	admitted := false
	fail := func(err error) {
		if admitted {
			s.fpExit(key.Fingerprint())
		}
		kl.Unlock()
		parentLog.lock.RUnlock()
		resp := &wire.MutateResp{RespCommon: s.respCommon(&req.ReqCommon, err)}
		s.remember(req.Client, req.RPC, resp)
		s.reply(p, req.Client, resp)
	}

	// Checking (step 3): stale-cache validation, stale-ring routing (plus the
	// migration arrival gate and busy reference), and existence.
	if err := s.checkAncestors(&req.ReqCommon); err != nil {
		fail(err)
		return
	}
	if err := s.admitFP(p, key.Fingerprint()); err != nil {
		fail(err)
		return
	}
	admitted = true
	s.tallyFP(key.Fingerprint())
	// The parent ref is current (stale caches were just rejected): if the
	// directory was renamed since this change-log was created, re-key the
	// log so this entry aggregates under the directory's current
	// fingerprint.
	s.rekeyClog(parentLog, req.Parent)
	p.Compute(c.KVGet)
	raw, exists := s.kv.GetView(key.Encode())
	var newDir core.DirID
	in := &core.Inode{}
	entry := core.LogEntry{Time: p.Now(), Name: req.Name}
	switch req.Op {
	case core.OpCreate:
		if exists {
			fail(core.ErrExist)
			return
		}
		perm := req.Perm
		if perm == 0 {
			perm = core.DefaultFilePerm
		}
		now := p.Now()
		in.Attr = core.Attr{Type: core.TypeRegular, Perm: perm, Nlink: 1,
			Atime: now, Mtime: now, Ctime: now}
		in.DataLoc = s.assignDataLoc(key)
		entry.Op, entry.Type, entry.Perm = core.OpCreate, core.TypeRegular, perm
	case core.OpMkdir:
		if exists {
			fail(core.ErrExist)
			return
		}
		perm := req.Perm
		if perm == 0 {
			perm = core.DefaultDirPerm
		}
		now := p.Now()
		newDir = s.idgen.Next()
		in.Attr = core.Attr{Type: core.TypeDir, Perm: perm, Nlink: 2,
			Atime: now, Mtime: now, Ctime: now}
		in.ID = newDir
		entry.Op, entry.Type, entry.Perm = core.OpMkdir, core.TypeDir, perm
	case core.OpDelete:
		if !exists {
			fail(core.ErrNotExist)
			return
		}
		old, err := core.DecodeInode(raw)
		if err != nil || old.Type == core.TypeDir {
			fail(core.ErrIsDir)
			return
		}
		entry.Op, entry.Type = core.OpDelete, old.Type
		if old.File != 0 {
			// Hard-linked file: the delete removes this reference and
			// decrements the shared attribute object's link count (§5.5).
			if err := s.adjustNlink(p, old.File, -1); err != nil {
				fail(err)
				return
			}
		}
	default:
		fail(core.ErrInvalid)
		return
	}

	// Commit (step 4): persist the operation, then execute (step 5). The
	// change-log entry id is reserved before logging so recovery can rebuild
	// the queue; per-name FIFO order is guaranteed by the target inode lock,
	// not by global id order.
	s.mu.Lock()
	s.nextEntry++
	entry.ID = s.nextEntry
	s.mu.Unlock()
	walRec := s.encodeCommit(req.Op, key, req.Parent, entry, in)
	wsp := s.cfg.Trace.Start(p, "wal:commit", "server")
	p.Compute(c.WALAppend)
	var lsn = mustAppend(s.wal, recCommit, walRec)
	wsp.End()
	if req.Op == core.OpDelete {
		p.Compute(c.KVDel)
		s.kv.Delete(key.Encode())
	} else {
		p.Compute(c.KVPut)
		s.kv.Put(key.Encode(), core.EncodeInode(in))
	}

	if !s.cfg.Async {
		// Baseline (Fig. 14): synchronous cross-server update of the parent
		// directory before replying. Locks are held across the round trip.
		s.syncCommit(p, req, parentLog, entry, lsn, kl, newDir)
		s.fpExit(key.Fingerprint())
		return
	}

	// Append to the parent's change-log (step 5).
	p.Compute(c.LogAppend)
	parentLog.qmu.Lock()
	parentLog.log.Append(entry)
	parentLog.walLSN[entry.ID] = lsn
	pending := parentLog.log.Len()
	parentLog.qmu.Unlock()

	// Dirty-set update and completion (steps 6–7). The response is cached
	// for retransmission replay only AFTER the commit ack: the client's copy
	// travels via the switch multicast at insert time, and replaying it any
	// earlier would acknowledge a write whose fingerprint is not yet in the
	// dirty set — a read racing the (fault-stretched) insert window would
	// then miss an acknowledged update. Until then begin()'s in-progress
	// marker silently drops duplicates.
	resp := &wire.MutateResp{RespCommon: s.respCommon(&req.ReqCommon, nil), Dir: newDir}
	s.asyncCommit(p, req.Parent, parentLog, entry, resp, req.Client)
	s.remember(req.Client, req.RPC, resp)

	// Unlocking happens when the switch (or the fallback owner) acks. The
	// busy reference is held through the commit ack: a migration must not
	// copy the group away between the local mutation and the client's copy
	// of the response leaving (the dedup cache stays authoritative here).
	kl.Unlock()
	parentLog.lock.RUnlock()
	s.fpExit(key.Fingerprint())

	// Proactive push when the log fills an MTU (§5.3), outside the locks.
	if pending >= s.cfg.PushEntries {
		s.maybePush(parentLog)
	} else {
		s.resetIdleTimer(parentLog)
	}
}

// asyncCommit sends the dirty-set insert and waits for the commit ack
// (success multicast leg 7b, or the fallback owner's ack). Retransmission
// makes the path robust to packet loss; inserts are idempotent (§5.4.1).
func (s *Server) asyncCommit(p *env.Proc, parent core.DirRef, parentLog *dirLog,
	entry core.LogEntry, resp *wire.MutateResp, client env.NodeID) {

	csp := s.cfg.Trace.Start(p, "commit:async", "server")
	defer csp.End()
	s.mu.Lock()
	s.nextCommit++
	ctx := &commitCtx{id: s.nextCommit, done: env.NewFuture(),
		dir: parent.ID, entryID: entry.ID}
	s.commits[ctx.id] = ctx
	s.mu.Unlock()

	notice := &wire.CommitNotice{
		Resp:     resp,
		Client:   client,
		CommitID: ctx.id,
		MarkOnly: s.cfg.Tracker == TrackerOwner,
	}
	if s.cfg.Tracker == TrackerOwner {
		// Owner-tracker variant: the parent's owner records the dirty state
		// and multicasts completion — an extra server on the critical path
		// (Fig. 16).
		notice.Update = wire.DirLog{Dir: parent}
	} else {
		// Snapshot the pending log for the overflow fallback: the switch
		// rewrites the packet to the parent's owner, which applies the whole
		// log synchronously (§5.2.1, §6.2).
		parentLog.qmu.Lock()
		notice.Update = wire.DirLog{Dir: parent, Entries: parentLog.log.Snapshot()}
		parentLog.qmu.Unlock()
	}
	for {
		if s.dead {
			return // fail-stopped: this incarnation retries no further
		}
		// The destination and the fallback owner are recomputed per retry: a
		// migration can re-route the parent's group mid-commit, and a packet
		// built once with a stale AltDst would keep steering the switch's
		// overflow rewrite at a server that no longer owns the directory
		// (the old owner forwards in-flight stragglers, but retransmissions
		// must route right at the source).
		var dst env.NodeID
		var pkt *wire.Packet
		if s.cfg.Tracker == TrackerOwner {
			dst = s.ownerOfFP(parent.FP)
			pkt = &wire.Packet{Dst: dst, Origin: s.cfg.ID, Trace: p.TraceCtx(), Body: notice}
		} else {
			dst = s.cfg.SwitchFor(parent.FP)
			pkt = &wire.Packet{
				DS: &wire.DSHeader{Op: wire.DSInsert, FP: parent.FP,
					AltDst: s.ownerOfFP(parent.FP)},
				Dst:    dst,
				Origin: s.cfg.ID,
				Trace:  p.TraceCtx(),
				Body:   notice,
			}
		}
		p.Send(dst, pkt)
		v, ok := ctx.done.WaitTimeout(p, s.cfg.RetryTimeout)
		if ok {
			ack := v.(*wire.CommitAck)
			s.mu.Lock()
			delete(s.commits, ctx.id)
			s.mu.Unlock()
			if ack.Applied {
				// Fallback applied the pending log remotely: mark applied
				// and trim (§5.4.2 keeps recovery exactly-once).
				s.Stats.Fallbacks++
				maxID := uint64(0)
				for _, e := range notice.Update.Entries {
					if e.ID > maxID {
						maxID = e.ID
					}
				}
				s.ackEntries(parentLog, maxID)
			} else {
				s.Stats.AsyncCommits++
			}
			return
		}
		s.Stats.Retries++
	}
}

// syncCommit is the Baseline path of Fig. 14: ship the single update to the
// parent's owner and wait for it to apply before replying; all locks held.
func (s *Server) syncCommit(p *env.Proc, req *wire.MutateReq, parentLog *dirLog,
	entry core.LogEntry, lsn wal.LSN, kl *env.RWMutex, newDir core.DirID) {

	s.mu.Lock()
	s.nextCommit++
	ctx := &commitCtx{id: s.nextCommit, done: env.NewFuture()}
	s.commits[ctx.id] = ctx
	s.mu.Unlock()

	csp := s.cfg.Trace.Start(p, "commit:sync", "server")
	defer csp.End()
	resp := &wire.MutateResp{RespCommon: s.respCommon(&req.ReqCommon, nil), Dir: newDir}
	notice := &wire.CommitNotice{
		Resp:     resp,
		Client:   req.Client,
		CommitID: ctx.id,
		Update:   wire.DirLog{Dir: req.Parent, Entries: []core.LogEntry{entry}},
	}
	dst := s.ownerOfFP(req.Parent.FP)
	pkt := &wire.Packet{Dst: dst, Origin: s.cfg.ID, Trace: p.TraceCtx(), Body: notice}
	for {
		p.Send(dst, pkt)
		if v, ok := ctx.done.WaitTimeout(p, s.cfg.RetryTimeout); ok {
			_ = v
			break
		}
		s.Stats.Retries++
	}
	s.mu.Lock()
	delete(s.commits, ctx.id)
	s.mu.Unlock()
	// Cache the response for retransmission replay only now that the remote
	// apply is acknowledged (the parent's owner also sent the client's copy).
	s.remember(req.Client, req.RPC, resp)
	s.Stats.SyncCommits++
	mustMark(s.wal, lsn)
	kl.Unlock()
	parentLog.lock.RUnlock()
}

// handleCommitAck completes a waiting commit context.
func (s *Server) handleCommitAck(p *env.Proc, ack *wire.CommitAck) {
	s.mu.Lock()
	ctx := s.commits[ack.CommitID]
	s.mu.Unlock()
	if ctx != nil {
		ctx.done.Complete(ack)
	}
}

// handleFallback runs on the parent directory's owner when (a) a dirty-set
// insert overflowed and the switch rewrote the packet here (§6.2), (b) the
// server runs in Baseline mode, or (c) the owner-tracker variant marks state.
func (s *Server) handleFallback(p *env.Proc, pkt *wire.Packet, cn *wire.CommitNotice) {
	p.Compute(s.cfg.Costs.Parse)
	fp := cn.Update.Dir.FP
	if s.checkOwnership(fp) != nil {
		// The directory's group migrated while this notice was in flight (or
		// the switch rewrote against a stale AltDst). Forward to the current
		// owner, preserving pkt.Origin: the origin server's identity drives
		// the per-source watermarks in applyEntries and routes the CommitAck.
		dst := s.ownerOfFP(fp)
		if dst != s.cfg.ID {
			p.Send(dst, &wire.Packet{Dst: dst, Origin: pkt.Origin,
				Trace: p.TraceCtx(), Body: cn})
		}
		return
	}
	if s.gateWait(p, fp) != nil {
		return // migration inbound; the origin's retry loop re-sends
	}
	if s.checkOwnership(fp) != nil {
		dst := s.ownerOfFP(fp)
		if dst != s.cfg.ID {
			p.Send(dst, &wire.Packet{Dst: dst, Origin: pkt.Origin,
				Trace: p.TraceCtx(), Body: cn})
		}
		return
	}
	s.fpEnter(fp)
	defer s.fpExit(fp)
	if cn.MarkOnly {
		s.mu.Lock()
		s.ownerDirty[fp] = true
		s.mu.Unlock()
		p.Send(cn.Client, &wire.Packet{Dst: cn.Client, Origin: s.cfg.ID,
			Trace: p.TraceCtx(), Body: cn.Resp})
		s.reply(p, pkt.Origin, &wire.CommitAck{CommitID: cn.CommitID})
		return
	}
	dir := cn.Update.Dir
	dl := s.lockOf(dir.Key)
	dl.Lock(p)
	s.applyEntries(p, pkt.Origin, cn.Update)
	dl.Unlock()
	p.Send(cn.Client, &wire.Packet{Dst: cn.Client, Origin: s.cfg.ID,
		Trace: p.TraceCtx(), Body: cn.Resp})
	s.reply(p, pkt.Origin, &wire.CommitAck{CommitID: cn.CommitID, Applied: true})
}

// ackEntries marks entries ≤ maxID applied in the WAL and trims the log.
func (s *Server) ackEntries(dl *dirLog, maxID uint64) {
	dl.qmu.Lock()
	for id, lsn := range dl.walLSN {
		if id <= maxID {
			mustMark(s.wal, lsn)
			delete(dl.walLSN, id)
		}
	}
	dl.log.AckThrough(maxID)
	dl.qmu.Unlock()
}

// adjustNlink updates a hard-linked file's shared attribute object, possibly
// on a remote server (§5.5). Returns ErrRetry on communication failure.
func (s *Server) adjustNlink(p *env.Proc, id core.FileID, delta int32) error {
	key := fileAttrKey(id)
	owner := s.ownerOfFP(key.Fingerprint())
	if owner == s.cfg.ID {
		return s.applyNlink(p, key, delta)
	}
	txn := &wire.TxnPrepare{
		Ops: []wire.TxnOp{{Kind: wire.TxnAdjustNlink, Key: key,
			Entry: core.LogEntry{ID: uint64(int64(delta))}}},
	}
	return s.runRemoteTxn(p, []env.NodeID{owner}, [][]wire.TxnOp{txn.Ops}, nil)
}
