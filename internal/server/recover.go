package server

import (
	"encoding/binary"
	"fmt"
	"sort"

	"switchfs/internal/core"
	"switchfs/internal/env"
	"switchfs/internal/wal"
	"switchfs/internal/wire"
)

// Additional WAL kinds for dentry mutations performed outside the
// aggregation path (entry-list migration during directory rename).
const (
	recDentry      uint8 = 5 // put/delete one dentry
	recDelDentries uint8 = 6 // drop a directory's whole entry list
	// recMark persists an exactly-once watermark transferred with a
	// migrated directory (§5.5): without it, a source re-pushing entries
	// already applied at the previous owner would double-apply them here.
	recMark uint8 = 7
)

func encodeDentryRec(dir core.DirID, name string, put bool, t core.FileType, perm core.Perm) []byte {
	b := make([]byte, 0, 48+len(name))
	b = dir.AppendBinary(b)
	if put {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = append(b, byte(t))
	b = binary.BigEndian.AppendUint16(b, uint16(perm))
	b = append(b, name...)
	return b
}

// Crash simulates a fail-stop: the node drops off the network and all
// volatile state is lost. The WAL (stable storage) survives and is reused by
// Restart. The dead flag terminates this incarnation's unbounded retry
// loops — after Restart re-registers the node id, a retransmission from the
// old incarnation would otherwise spin forever against a successor that no
// longer holds its contexts.
func (s *Server) Crash() {
	s.serving = false
	s.dead = true
	s.node.SetDown(true)
}

// Restart builds a fresh server over the surviving WAL and re-registers the
// node. The caller then runs Recover on a process to replay and re-join.
func Restart(e env.Env, cfg Config, log wal.Log) *Server {
	cfg.WAL = log
	return New(e, cfg)
}

// Recover implements §5.4.2 server recovery: (1) redo WAL records to rebuild
// the key-value store and the not-yet-applied change-log entries, (2) push
// the rebuilt change-logs and proactively aggregate every directory this
// server owns, so aggregations interrupted by the crash run to completion,
// (3) clone the invalidation list from a peer, then resume serving.
func (s *Server) Recover(p *env.Proc) error {
	s.serving = false
	s.recovering = true
	defer func() { s.recovering = false }()
	s.node.SetDown(false)

	n := s.wal.Len()
	if err := s.replayWAL(); err != nil {
		return err
	}
	// Redo cost: recovery time is proportional to the records replayed
	// (§7.7; checkpointing would shrink it, as the paper notes).
	p.Compute(env.Duration(n) * s.cfg.Costs.WALReplay)

	// Rebuild in-doubt 2PC participant state (locks, replayed votes,
	// termination monitors) before anything else can touch those keys.
	s.rearmPreparedTxns(p)

	// Re-deliver rebuilt change-logs: their fingerprints may have been
	// inserted before the crash (reads will aggregate) or may never have
	// made it to the switch — pushing them to their owners restores
	// visibility either way.
	s.mu.Lock()
	logs := sortedClogs(s.clogs)
	s.mu.Unlock()
	for _, dl := range logs {
		dl.qmu.Lock()
		snap := dl.log.Snapshot()
		dl.qmu.Unlock()
		if len(snap) == 0 {
			continue
		}
		s.pushLogFinal(p, dl, snap)
	}

	// Proactively aggregate every directory this server owns (§A.1): any
	// aggregation it had issued before the crash completes now.
	for _, fp := range s.ownedDirFingerprints() {
		s.aggregateFP(p, fp, &aggOpts{force: true})
	}

	// Re-drive un-acked 2PC commit decisions rebuilt from the WAL: in-doubt
	// participants apply and ack, already-resolved ones ack the duplicate;
	// fully-acked records retire so they stop replaying.
	s.redriveCommits(p)

	// Clone the invalidation list from the first reachable peer.
	for _, peer := range s.cfg.Peers {
		if peer == s.cfg.ID {
			continue
		}
		v, err := s.ctlCall(p, peer, func(ctl uint64) wire.Msg {
			return &wire.CloneInvalReq{Ctl: ctl, From: s.cfg.ID}
		})
		if err != nil {
			continue
		}
		resp := v.(*wire.CloneInvalResp)
		s.mu.Lock()
		for _, e := range resp.Entries {
			if _, ok := s.invalSet[e.Dir]; !ok {
				s.invalSeq++
				s.invalSet[e.Dir] = s.invalSeq
				s.inval = append(s.inval, wire.InvalEntry{Seq: s.invalSeq, Dir: e.Dir})
			}
		}
		s.mu.Unlock()
		break
	}

	s.serving = true
	return nil
}

// replayWAL redoes committed operations in commit order (§A.2.2: recovery
// reproduces the pre-crash serialization).
func (s *Server) replayWAL() error {
	s.bootstrapRoot()
	return s.wal.Replay(func(r wal.Record) error {
		switch r.Kind {
		case recCommit:
			op, key, parent, entry, in, err := decodeCommit(r.Payload)
			if err != nil {
				return err
			}
			switch op {
			case core.OpCreate, core.OpMkdir:
				s.kv.Put(key.Encode(), core.EncodeInode(in))
			case core.OpDelete, core.OpRmdir:
				s.kv.Delete(key.Encode())
			}
			if entry.ID > s.nextEntry {
				s.nextEntry = entry.ID
			}
			if !r.Applied {
				dl := s.clogOf(parent)
				dl.qmu.Lock()
				dl.log.Append(entry)
				dl.walLSN[entry.ID] = r.LSN
				dl.qmu.Unlock()
			}
			if op == core.OpRmdir {
				s.addInval(in.ID)
			}
		case recAggEntry:
			src := env.NodeID(binary.BigEndian.Uint64(r.Payload))
			dir, entry, _ := decodeEntry(r.Payload[8:])
			s.redoAggEntry(src, dir, entry)
		case recInode:
			key, in, err := decodeInodeRec(r.Payload)
			if err != nil {
				return err
			}
			if in == nil {
				s.kv.Delete(key.Encode())
			} else {
				s.kv.Put(key.Encode(), core.EncodeInode(in))
			}
		case recDentry:
			dir := core.DirIDFromBytes(r.Payload)
			put := r.Payload[32] == 1
			t := core.FileType(r.Payload[33])
			perm := core.Perm(binary.BigEndian.Uint16(r.Payload[34:]))
			name := string(r.Payload[36:])
			dk := append(core.EntryPrefix(dir), name...)
			if put {
				s.kv.Put(dk, core.EncodeDirEntry(core.DirEntry{Name: name, Type: t, Perm: perm}))
			} else {
				s.kv.Delete(dk)
			}
		case recMark:
			src := env.NodeID(binary.BigEndian.Uint64(r.Payload))
			dir := core.DirIDFromBytes(r.Payload[8:])
			id := binary.BigEndian.Uint64(r.Payload[40:])
			if s.applied[appliedKey{src: src, dir: dir}] < id {
				s.applied[appliedKey{src: src, dir: dir}] = id
			}
		case recDelDentries:
			dir := core.DirIDFromBytes(r.Payload)
			prefix := core.EntryPrefix(dir)
			var keys [][]byte
			s.kv.Scan(prefix, func(k, v []byte) bool {
				keys = append(keys, append([]byte(nil), k...))
				return true
			})
			for _, k := range keys {
				s.kv.Delete(k)
			}
		case recTxnCommit:
			// A commit decision some participant may not have learned yet
			// (the record is marked applied once every participant acked):
			// rebuild it so in-doubt status queries are answered with commit
			// instead of presumed-abort, and queue it for re-delivery so the
			// record can retire instead of replaying forever.
			if !r.Applied {
				txn := binary.BigEndian.Uint64(r.Payload)
				s.txnDecided[txn] = true
				s.txnWAL[txn] = r.LSN
				var parts []env.NodeID
				for off := 8; off+8 <= len(r.Payload); off += 8 {
					parts = append(parts, env.NodeID(binary.BigEndian.Uint64(r.Payload[off:])))
				}
				s.txnRedrive = append(s.txnRedrive, txnRedrive{txn: txn, parts: parts})
			}
		case recEvict:
			// The group migrated away: drop its records, or this restart
			// would resurrect inodes that live (and have advanced) on the
			// server the group moved to.
			s.evictFP(core.Fingerprint(binary.BigEndian.Uint64(r.Payload)))
		case recTxnPrepare:
			// A prepared, undecided transaction: this incarnation must hold
			// its locks and be able to apply the (possibly already-decided)
			// commit — rebuilt after replay by rearmPreparedTxns.
			if !r.Applied {
				txn, coord, ops := decodeTxnPrepare(r.Payload)
				s.txnRearm = append(s.txnRearm, txnRearm{txn: txn, coord: coord, ops: ops, lsn: r.LSN})
			}
		default:
			return fmt.Errorf("server: unknown WAL record kind %d", r.Kind)
		}
		return nil
	})
}

// redoAggEntry re-applies one owner-side change-log application during
// replay. The watermark check keeps the redo idempotent.
func (s *Server) redoAggEntry(src env.NodeID, dir core.DirRef, e core.LogEntry) {
	mark := s.applied[appliedKey{src: src, dir: dir.ID}]
	if e.ID <= mark {
		return
	}
	s.applied[appliedKey{src: src, dir: dir.ID}] = e.ID
	ek := dir.Key.Encode()
	raw, ok := s.kv.Get(ek)
	if ok {
		if in, err := core.DecodeInode(raw); err == nil {
			one := core.Compact([]core.LogEntry{e})
			one.ApplyToAttr(&in.Attr, e.Time)
			s.kv.Put(ek, core.EncodeInode(in))
			dk := append(core.EntryPrefix(in.ID), e.Name...)
			switch e.Op {
			case core.OpCreate, core.OpMkdir:
				s.kv.Put(dk, core.EncodeDirEntry(core.DirEntry{Name: e.Name, Type: e.Type, Perm: e.Perm}))
			case core.OpDelete, core.OpRmdir:
				s.kv.Delete(dk)
			}
		}
	}
	if e.ID > s.nextTxnEntry && src&txnSrcFlag != 0 {
		s.nextTxnEntry = e.ID
	}
}

// ownedDirFingerprints scans the KV store for directory inodes this server
// owns and returns their distinct fingerprints.
func (s *Server) ownedDirFingerprints() []core.Fingerprint {
	seen := make(map[core.Fingerprint]bool)
	var out []core.Fingerprint
	s.kv.Scan(nil, func(k, v []byte) bool {
		key, err := core.DecodeKey(k)
		if err != nil {
			return true
		}
		in, err := core.DecodeInode(v)
		if err != nil || in.Type != core.TypeDir {
			return true
		}
		fp := key.Fingerprint()
		if s.ownerOfFP(fp) != s.cfg.ID {
			return true // a dentry record or a migrated leftover
		}
		if !seen[fp] {
			seen[fp] = true
			out = append(out, fp)
		}
		return true
	})
	return out
}

// pushLogFinal synchronously delivers a change-log to its owner (recovery
// and flush-all); entries are marked applied on ack.
func (s *Server) pushLogFinal(p *env.Proc, dl *dirLog, snap []core.LogEntry) {
	msg := &wire.ChangePush{From: s.cfg.ID, Log: wire.DirLog{Dir: dl.ref, Entries: snap}, Final: true}
	fut := env.NewFuture()
	s.mu.Lock()
	s.pushWait[dl.ref.ID] = fut
	s.mu.Unlock()
	acked := false
	for try := 0; try < maxAggRetries; try++ {
		if s.dead {
			break // a later recovery rebuilds and re-pushes this log
		}
		// The owner is recomputed per retry: a migration may re-route the
		// group mid-push, and the old owner drops mis-routed pushes.
		s.reply(p, s.ownerOfFP(dl.ref.FP), msg)
		if v, ok := fut.WaitTimeout(p, s.cfg.RetryTimeout); ok {
			ack := v.(*wire.ChangePushAck)
			s.ackEntries(dl, ack.MaxID)
			acked = true
			break
		}
		s.Stats.Retries++
	}
	if !acked {
		// The owner stayed unreachable: the entries stay pending here. Mark
		// the group dirty so reads aggregate them instead of trusting a
		// normal fingerprint that a dead owner's aggregation removed.
		s.markDirty(p, dl.ref.FP)
	}
	s.mu.Lock()
	delete(s.pushWait, dl.ref.ID)
	s.mu.Unlock()
}

// handleCloneInval serves a recovering peer (§5.4.2).
func (s *Server) handleCloneInval(p *env.Proc, req *wire.CloneInvalReq) {
	s.mu.Lock()
	resp := &wire.CloneInvalResp{Ctl: req.Ctl, From: s.cfg.ID, Seq: s.invalSeq,
		Entries: append([]wire.InvalEntry(nil), s.inval...)}
	s.mu.Unlock()
	s.reply(p, req.From, resp)
}

// FlushAll pushes every pending change-log entry to its owner; with the
// dirty set reset, the filesystem returns to a consistent all-normal state
// (switch recovery, §5.4.2; reconfiguration, §5.5). Serving stops during the
// flush.
func (s *Server) FlushAll(p *env.Proc) {
	s.serving = false
	s.mu.Lock()
	logs := sortedClogs(s.clogs)
	s.mu.Unlock()
	for _, dl := range logs {
		dl.qmu.Lock()
		snap := dl.log.Snapshot()
		dl.qmu.Unlock()
		if len(snap) > 0 {
			s.pushLogFinal(p, dl, snap)
		}
	}
	s.serving = true
}

// handleFlushAll runs FlushAll on a control request and confirms.
func (s *Server) handleFlushAll(p *env.Proc, from env.NodeID, req *wire.FlushAllReq) {
	s.FlushAll(p)
	s.reply(p, from, &wire.FlushAllResp{Ctl: req.Ctl, From: s.cfg.ID})
}

// InjectInode installs an inode record directly (fixture loading); when log
// is set the record is WAL-backed so it survives a simulated crash.
func (s *Server) InjectInode(key core.Key, in *core.Inode, log bool) {
	if log {
		mustAppend(s.wal, recInode, encodeInodeRec(key, in))
	}
	s.kv.Put(key.Encode(), core.EncodeInode(in))
}

// InjectDentry installs a directory-entry record directly (fixture loading).
func (s *Server) InjectDentry(dir core.DirID, e core.DirEntry, log bool) {
	if log {
		mustAppend(s.wal, recDentry, encodeDentryRec(dir, e.Name, true, e.Type, e.Perm))
	}
	dk := append(core.EntryPrefix(dir), e.Name...)
	s.kv.Put(dk, core.EncodeDirEntry(e))
}

// AppliedMarks returns dir's per-source exactly-once watermarks, sorted by
// source id (directory migration).
func (s *Server) AppliedMarks(dir core.DirID) []AppliedMark {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []AppliedMark
	for k, v := range s.applied {
		if k.dir == dir {
			out = append(out, AppliedMark{Src: k.src, ID: v})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Src < out[j].Src })
	return out
}

// AppliedMark is one (source, high-watermark) pair of a directory.
type AppliedMark struct {
	Src env.NodeID
	ID  uint64
}

// InjectAppliedMark installs a watermark transferred with a migrated
// directory, WAL-backed so it survives this server's later crashes. Entries
// a source re-pushes because the previous owner's ack was lost stay
// deduplicated at this owner.
func (s *Server) InjectAppliedMark(src env.NodeID, dir core.DirID, id uint64, log bool) {
	if log {
		b := u64(nil, uint64(src))
		b = dir.AppendBinary(b)
		b = u64(b, id)
		mustAppend(s.wal, recMark, b)
	}
	s.setAppliedMark(src, dir, id)
}

// AggsQuiescent reports that no aggregation is in flight on this server,
// neither as owner (aggs) nor as a peer holding change-log locks for one
// (peerAggs), and that no §5.4.2 recovery is mid-run (recovery issues a
// sequence of pushes and forced aggregations that must complete under one
// ring). Reconfiguration must drain both before remapping: an aggregation
// completing across the remap would apply collected entries — and let
// peers trim them — at a server that no longer owns the directory.
func (s *Server) AggsQuiescent() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.recovering || len(s.aggs) != 0 || len(s.peerAggs) != 0 {
		return false
	}
	// aggs deregisters before the apply phase; aggActive covers an
	// aggregation end to end. The scan is a pure any-match, so map order
	// cannot leak into behavior.
	for _, st := range s.fps {
		if st.aggActive {
			return false
		}
	}
	return true
}

// SetCores resizes the server's usable core count in place (gray failure:
// core degradation). Restores with the configured count.
func (s *Server) SetCores(k int) { s.node.SetCores(k) }

// Cores reports the configured (healthy) core count.
func (s *Server) Cores() int { return s.cfg.Cores }

// Serving reports whether the server accepts normal requests.
func (s *Server) Serving() bool { return s.serving }

// SetServing toggles request serving (cluster reconfiguration).
func (s *Server) SetServing(v bool) { s.serving = v }

// PendingTxnCommitRecords counts un-retired 2PC commit-decision records in
// the WAL (diagnostics; the redrive regression tests assert recovery
// retires them instead of replaying them forever).
func (s *Server) PendingTxnCommitRecords() int {
	n := 0
	_ = s.wal.Replay(func(r wal.Record) error {
		if r.Kind == recTxnCommit && !r.Applied {
			n++
		}
		return nil
	})
	return n
}

// PendingClogEntries counts not-yet-applied change-log entries across all
// directories (diagnostics).
func (s *Server) PendingClogEntries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, dl := range s.clogs {
		dl.qmu.Lock()
		n += dl.log.Len()
		dl.qmu.Unlock()
	}
	return n
}

// SetPeers replaces the peer set after cluster reconfiguration (§5.5).
func (s *Server) SetPeers(peers []env.NodeID) {
	s.mu.Lock()
	s.cfg.Peers = append([]env.NodeID(nil), peers...)
	s.mu.Unlock()
}
