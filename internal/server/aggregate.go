package server

import (
	"fmt"

	"switchfs/internal/core"
	"switchfs/internal/env"
	"switchfs/internal/wire"
)

// aggOpts tunes one aggregation.
type aggOpts struct {
	// rmdir marks rmdir-triggered aggregations: peers append dir to their
	// invalidation lists before replying (§5.2.3 step 5).
	rmdir bool
	dir   core.DirID
	// force runs an aggregation even if another one completed while
	// waiting (rmdir must observe the very latest state).
	force bool
}

// maxAggRetries bounds fetch retransmissions before proceeding with the
// replies at hand (a peer that stays down re-delivers its entries during its
// own recovery, §A.1).
const maxAggRetries = 100

// peerAggState is the peer-side context of an aggregation it is serving:
// the change-logs it locked and the ack it awaits (§5.2.2 steps 6, 9a).
type peerAggState struct {
	id     uint64
	fp     core.Fingerprint
	owner  env.NodeID
	logs   []wire.DirLog
	locked []*dirLog
	done   *env.Future
	// ready flips once the snapshot exists; duplicate fetches arriving
	// earlier are dropped — answering them with the (empty) placeholder
	// would let the owner complete without this peer's entries while the
	// original handler still holds the change-log locks.
	ready bool
}

// aggregateFP aggregates every directory of a fingerprint group: remove the
// fingerprint from the dirty set, collect all pending change-log entries from
// every server, apply them to the inodes, and acknowledge (§5.2.2). It
// reports whether the aggregation was complete — false when a peer stayed
// unreachable past the retry budget, in which case the state visible now
// may miss that peer's acknowledged entries and readers must not treat it
// as covering their arrival time.
func (s *Server) aggregateFP(p *env.Proc, fp core.Fingerprint, opts *aggOpts) bool {
	if opts == nil {
		opts = &aggOpts{}
	}
	// A read is only satisfied by an aggregation whose dirty-set remove was
	// issued at or after the read arrived: every insert that contributed to
	// the read's "scattered" observation precedes the read's arrival, so
	// such an aggregation's fetches are guaranteed to cover those updates
	// (§A.2, Case 2.b). Joining an aggregation that started earlier could
	// return state missing updates whose inserts followed that aggregation's
	// remove.
	arrived := p.Now()
	st := s.fpOf(fp)
	st.mu.Lock(p)
	for {
		if st.aggActive {
			st.cond.Wait(p, &st.mu)
			continue
		}
		if !opts.force && st.lastStart >= arrived {
			// A fresh-enough aggregation completed while we waited.
			st.mu.Unlock()
			return true
		}
		st.aggActive = true
		st.lastStart = p.Now()
		break
	}
	st.mu.Unlock()

	complete := s.runAggregation(p, fp, opts)

	st.mu.Lock(p)
	if !complete {
		// An incomplete aggregation (a peer stayed down) covers nobody:
		// waiters must run their own instead of taking this one as fresh.
		st.lastStart = 0
	}
	st.lastIncomplete = !complete
	st.aggActive = false
	st.cond.Broadcast()
	st.mu.Unlock()
	return complete
}

// waitAggIdle blocks until no aggregation for the fingerprint group is in
// flight on this server. Directory reads whose dirty-set query returned
// "normal" use it: the fingerprint may be absent precisely because an
// in-flight aggregation removed it and has not applied its entries yet. It
// returns false when the most recent aggregation ended incomplete (a peer
// stayed unreachable) — the state now visible may miss acknowledged
// entries, and the read must retry rather than serve it.
func (s *Server) waitAggIdle(p *env.Proc, fp core.Fingerprint) bool {
	st := s.fpOf(fp)
	st.mu.Lock(p)
	for st.aggActive {
		st.cond.Wait(p, &st.mu)
	}
	ok := !st.lastIncomplete
	st.mu.Unlock()
	return ok
}

// runAggregation drives one aggregation of a fingerprint group: lock the
// local change-logs, fetch the peers' entries, apply, and release.
//
//detlint:lock-escapes the change-log locks are held for the life of the aggregation (dl.heldBy = id) and released inline after apply; the s.dead returns abandon them with the fail-stopped incarnation, whose volatile state Restart discards
func (s *Server) runAggregation(p *env.Proc, fp core.Fingerprint, opts *aggOpts) bool {
	asp := s.cfg.Trace.Start(p, "agg:run", "server")
	defer asp.End()
	s.Stats.Aggregations++
	s.mu.Lock()
	s.nextAgg++
	id := uint64(s.cfg.ID)<<40 | s.nextAgg
	ctx := &aggCtx{id: id, fp: fp, done: env.NewFuture(), expect: make(map[env.NodeID]bool)}
	for _, peer := range s.cfg.Peers {
		if peer != s.cfg.ID {
			ctx.expect[peer] = true
		}
	}
	s.aggs[id] = ctx
	s.aggByFP[fp] = ctx
	if s.ownerOfFP(fp) != s.cfg.ID {
		// The group migrated away between the trigger (a read, a quiesce
		// timer) and this registration. Aggregating a group this server no
		// longer owns would collect peers' entries into a store the ring no
		// longer routes reads to. Deregister and report incomplete — the
		// caller retries and re-resolves to the new owner. Runs in the same
		// event as the registration above, so FPQuiescent never observes a
		// half-registered aggregation.
		delete(s.aggs, id)
		delete(s.aggByFP, fp)
		s.mu.Unlock()
		return false
	}
	if s.cfg.Tracker == TrackerOwner {
		delete(s.ownerDirty, fp)
	}
	// Cancel a pending quiesce timer; this aggregation supersedes it.
	if t := s.quiesce[fp]; t != nil {
		t.Cancel()
		delete(s.quiesce, fp)
	}
	locals := sortedClogs(s.clogsByFP[fp])
	s.mu.Unlock()

	// Collect the local change-logs of the group under their exclusive
	// protocol locks (this server may itself have logged updates to
	// directories it owns).
	var localLogs []wire.DirLog
	for _, dl := range locals {
		if debugApply {
			fmt.Printf("AGG srv=%d id=%d acquiring local clog-Lock dir=%s\n", s.cfg.ID, id, dl.ref.ID.String()[:8])
		}
		dl.lock.Lock(p)
		dl.qmu.Lock()
		if dl.log.Len() > 0 {
			localLogs = append(localLogs, wire.DirLog{Dir: dl.ref, Entries: dl.log.Snapshot()})
		}
		dl.heldBy = id
		dl.qmu.Unlock()
	}

	// Fetch from peers: remove the fingerprint and multicast (steps 5–6).
	fetch := &wire.AggFetch{AggID: id, FP: fp, Owner: s.cfg.ID, Rmdir: opts.rmdir, Dir: opts.dir}
	if len(ctx.expect) == 0 {
		ctx.done.Complete(nil)
	}
	complete := true
	// One remove sequence number per aggregation: a RETRANSMITTED remove must
	// look stale to the switch's sequence guard (§5.4.1) so it cannot erase
	// fingerprints inserted after the aggregation began — the guard rejects
	// it while the piggybacked fetch still re-multicasts. Allocating a fresh
	// seq per retry used to wipe newer inserts, leaving their change-log
	// entries pending behind a "normal" directory until a proactive timer
	// healed the staleness (caught by the chaos checker).
	s.mu.Lock()
	s.nextRemove++
	seq := s.nextRemove
	s.mu.Unlock()
	for {
		if s.cfg.Tracker == TrackerOwner {
			// Sorted snapshot: each send draws latency/jitter from the
			// seeded RNG, so emitting in map order would make two runs with
			// the same seed diverge (caught by detlint maprange).
			for _, peer := range sortedNodeIDs(ctx.expect) {
				s.reply(p, peer, fetch)
			}
		} else {
			sw := s.cfg.SwitchFor(fp)
			p.Send(sw, &wire.Packet{
				DS:     &wire.DSHeader{Op: wire.DSRemove, FP: fp, Seq: seq},
				Dst:    sw,
				Origin: s.cfg.ID,
				Trace:  p.TraceCtx(),
				Body:   fetch,
			})
		}
		if _, ok := ctx.done.WaitTimeout(p, s.cfg.RetryTimeout); ok {
			break
		}
		ctx.retries++
		s.Stats.Retries++
		if s.dead {
			// Fail-stopped mid-aggregation: abandon without applying or
			// acking. Peers time out, release their locks and KEEP their
			// entries, which re-surface through this server's recovery or
			// the next aggregation — applying them to this dead
			// incarnation's store (and letting peers trim) would lose them.
			s.mu.Lock()
			delete(s.aggs, id)
			if s.aggByFP[fp] == ctx {
				delete(s.aggByFP, fp)
			}
			s.mu.Unlock()
			return false
		}
		if ctx.retries >= maxAggRetries {
			// Proceed with what we have so responsive peers can trim, but
			// report the aggregation incomplete: the unreachable peer's
			// acknowledged entries re-surface only via its recovery, and
			// until then the group must read as dirty again (below) so no
			// read mistakes the partial state for the full directory.
			complete = false
			s.mu.Lock()
			for peer := range ctx.expect {
				delete(ctx.expect, peer)
			}
			s.mu.Unlock()
			break
		}
	}

	// Apply (steps 7–8): group the collected logs by directory and apply
	// under the inode locks. Per-peer acks let each sender trim exactly the
	// entries it contributed.
	s.mu.Lock()
	collected := ctx.logs
	delete(s.aggs, id)
	if s.aggByFP[fp] == ctx {
		delete(s.aggByFP, fp)
	}
	s.mu.Unlock()
	if s.dead {
		return false // fail-stopped: do not apply to this incarnation or ack peers
	}

	type srcLog struct {
		src env.NodeID
		log wire.DirLog
	}
	var all []srcLog
	for _, l := range localLogs {
		all = append(all, srcLog{src: s.cfg.ID, log: l})
	}
	for _, e := range collected {
		all = append(all, srcLog{src: e.from, log: e.log})
	}
	acks := make(map[env.NodeID]*wire.AggAck)
	for _, sl := range all {
		l := s.lockOf(sl.log.Dir.Key)
		l.Lock(p)
		maxID := s.applyEntries(p, sl.src, sl.log)
		l.Unlock()
		if sl.src == s.cfg.ID {
			continue // local trim happens below
		}
		a := acks[sl.src]
		if a == nil {
			a = &wire.AggAck{AggID: id, FP: fp, MaxIDs: make(map[core.DirID]uint64)}
			acks[sl.src] = a
		}
		if a.MaxIDs[sl.log.Dir.ID] < maxID {
			a.MaxIDs[sl.log.Dir.ID] = maxID
		}
	}

	// Acknowledge every peer (steps 9–10); peers with no entries get an
	// empty ack so their (unlocked) state stays clean, and peers whose
	// entries we applied trim and unlock.
	for _, peer := range s.cfg.Peers {
		if peer == s.cfg.ID {
			continue
		}
		a := acks[peer]
		if a == nil {
			a = &wire.AggAck{AggID: id, FP: fp}
		}
		s.reply(p, peer, a)
	}
	s.rememberAggAcks(id, acks)

	// Trim and unlock the local logs.
	for _, dl := range locals {
		var maxID uint64
		dl.qmu.Lock()
		for _, l := range localLogs {
			if l.Dir.ID == dl.ref.ID {
				for _, e := range l.Entries {
					if e.ID > maxID {
						maxID = e.ID
					}
				}
			}
		}
		dl.qmu.Unlock()
		if maxID > 0 {
			s.ackEntries(dl, maxID)
		}
		dl.qmu.Lock()
		dl.heldBy = 0
		dl.qmu.Unlock()
		dl.lock.Unlock()
	}

	if !complete {
		// Mark the group dirty again: the remove above erased the
		// fingerprint, but the unreachable peer may hold acknowledged
		// entries this aggregation never collected. Reads must keep
		// treating the group as scattered (and re-aggregating) until that
		// peer's recovery re-delivers them — serving "normal" state now
		// would silently drop acknowledged writes from view.
		s.markDirty(p, fp)
	}
	return complete
}

// markDirty (re-)inserts a fingerprint group's dirty marker so reads
// aggregate. Called whenever acknowledged change-log entries remain pending
// behind a possibly-normal fingerprint: an aggregation that gave up on an
// unreachable peer, or a push whose target owner stayed unreachable — in
// both cases a "normal" read would silently miss the pending entries.
func (s *Server) markDirty(p *env.Proc, fp core.Fingerprint) {
	if s.dead {
		return
	}
	if s.cfg.Tracker == TrackerOwner {
		s.mu.Lock()
		s.ownerDirty[fp] = true
		s.mu.Unlock()
		return
	}
	sw := s.cfg.SwitchFor(fp)
	p.Send(sw, &wire.Packet{
		DS:     &wire.DSHeader{Op: wire.DSInsert, FP: fp, AltDst: s.ownerOfFP(fp)},
		Dst:    sw,
		Origin: s.cfg.ID,
		Trace:  p.TraceCtx(),
	})
}

// completedAggCache bounds the re-ack cache.
const completedAggCache = 256

func (s *Server) rememberAggAcks(id uint64, acks map[env.NodeID]*wire.AggAck) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.doneAggs == nil {
		s.doneAggs = make(map[uint64]map[env.NodeID]*wire.AggAck)
	}
	s.doneAggs[id] = acks
	s.doneAggLog = append(s.doneAggLog, id)
	if len(s.doneAggLog) > completedAggCache {
		old := s.doneAggLog[0]
		s.doneAggLog = s.doneAggLog[1:]
		delete(s.doneAggs, old)
	}
}

// handleAggFetch runs on every non-owner server: lock the group's
// change-logs, snapshot, and stream the entries to the owner, retrying until
// acknowledged (§5.2.2 step 6).
//
//detlint:lock-escapes the snapshotted change-log locks transfer to peerAggState.locked (dl.heldBy = f.AggID) and are released by finishPeerAgg on ack or give-up
func (s *Server) handleAggFetch(p *env.Proc, f *wire.AggFetch) {
	p.Compute(s.cfg.Costs.Parse)
	if f.Rmdir {
		s.addInval(f.Dir)
	}
	s.mu.Lock()
	if st := s.peerAggs[f.AggID]; st != nil {
		if !st.ready {
			// The original handler is still acquiring locks; it will send.
			s.mu.Unlock()
			return
		}
		// Duplicate fetch (owner retried): resend the same snapshot.
		logs := st.logs
		s.mu.Unlock()
		s.reply(p, f.Owner, &wire.AggEntries{AggID: f.AggID, FP: f.FP, From: s.cfg.ID, Logs: logs})
		return
	}
	st := &peerAggState{id: f.AggID, fp: f.FP, owner: f.Owner, done: env.NewFuture()}
	if s.peerAggs == nil {
		s.peerAggs = make(map[uint64]*peerAggState)
	}
	s.peerAggs[f.AggID] = st
	dls := sortedClogs(s.clogsByFP[f.FP])
	s.mu.Unlock()

	for _, dl := range dls {
		if debugApply {
			fmt.Printf("FETCH srv=%d agg=%d acquiring clog-Lock dir=%s\n", s.cfg.ID, f.AggID, dl.ref.ID.String()[:8])
		}
		dl.lock.Lock(p) // exclusive: blocks appenders while entries travel
		dl.qmu.Lock()
		if dl.log.Len() > 0 {
			st.logs = append(st.logs, wire.DirLog{Dir: dl.ref, Entries: dl.log.Snapshot()})
			st.locked = append(st.locked, dl)
			dl.heldBy = f.AggID
			dl.qmu.Unlock()
		} else {
			dl.qmu.Unlock()
			dl.lock.Unlock()
		}
	}

	s.mu.Lock()
	st.ready = true
	s.mu.Unlock()
	msg := &wire.AggEntries{AggID: f.AggID, FP: f.FP, From: s.cfg.ID, Logs: st.logs}
	for try := 0; ; try++ {
		s.reply(p, f.Owner, msg)
		if v, ok := st.done.WaitTimeout(p, s.cfg.RetryTimeout); ok {
			// This handler owns the locks: trim per the owner's ack and
			// release (§5.2.2 steps 9a/9b).
			ack := v.(*wire.AggAck)
			s.finishPeerAgg(st, ack)
			return
		}
		s.Stats.Retries++
		if try >= maxAggRetries {
			// Owner unreachable: keep the entries (no trim) and release the
			// locks so the system can make progress; the owner's recovery
			// re-aggregates (§A.1).
			s.mu.Lock()
			delete(s.peerAggs, f.AggID)
			s.mu.Unlock()
			s.finishPeerAgg(st, &wire.AggAck{AggID: f.AggID, FP: f.FP})
			return
		}
	}
}

// finishPeerAgg trims acknowledged entries and releases the change-log locks
// held on behalf of one aggregation. Only the fetch handler calls it, so
// lock release has a single owner.
func (s *Server) finishPeerAgg(st *peerAggState, a *wire.AggAck) {
	for _, dl := range st.locked {
		if maxID, ok := a.MaxIDs[dl.ref.ID]; ok && maxID > 0 {
			s.ackEntries(dl, maxID)
		}
		dl.qmu.Lock()
		dl.heldBy = 0
		dl.qmu.Unlock()
		dl.lock.Unlock()
		if debugApply {
			fmt.Printf("FETCH srv=%d agg=%d released dir=%s\n", s.cfg.ID, a.AggID, dl.ref.ID.String()[:8])
		}
	}
}

// handleAggEntries collects one peer's reply at the aggregation owner.
func (s *Server) handleAggEntries(p *env.Proc, e *wire.AggEntries) {
	s.mu.Lock()
	ctx := s.aggs[e.AggID]
	if ctx == nil {
		// Late or duplicate reply to a completed aggregation: re-ack so the
		// peer can trim and unlock.
		acks := s.doneAggs[e.AggID]
		s.mu.Unlock()
		if acks != nil {
			a := acks[e.From]
			if a == nil {
				a = &wire.AggAck{AggID: e.AggID, FP: e.FP}
			}
			s.reply(p, e.From, a)
		}
		return
	}
	if !ctx.expect[e.From] {
		s.mu.Unlock()
		return // duplicate within the active aggregation
	}
	delete(ctx.expect, e.From)
	for _, l := range e.Logs {
		ctx.logs = append(ctx.logs, aggLog{from: e.From, log: l})
	}
	rest := len(ctx.expect)
	s.mu.Unlock()
	if rest == 0 {
		ctx.done.Complete(nil)
	}
}

// handleAggAck finishes the peer side: it hands the ack to the waiting
// fetch handler, which owns the trim-and-unlock (§5.2.2 steps 9a/9b).
func (s *Server) handleAggAck(p *env.Proc, a *wire.AggAck) {
	s.mu.Lock()
	st := s.peerAggs[a.AggID]
	if st != nil {
		delete(s.peerAggs, a.AggID)
	}
	s.mu.Unlock()
	if st == nil {
		return
	}
	st.done.Complete(a)
}

// applyEntries applies one source's pending entries of one directory to the
// inode and entry list. The caller holds the directory inode's exclusive
// lock. Returns the largest entry ID seen (applied or deduplicated), so the
// source can trim. With compaction disabled, each entry pays its own
// attribute read-modify-write — the "+Async" configuration of Fig. 14; with
// compaction, attribute deltas merge into one update (§5.3).
func (s *Server) applyEntries(p *env.Proc, src env.NodeID, log wire.DirLog) uint64 {
	c := &s.cfg.Costs
	mark := s.appliedMark(src, log.Dir.ID)
	fresh := log.Entries[:0:0]
	var maxID uint64
	for _, e := range log.Entries {
		if e.ID > maxID {
			maxID = e.ID
		}
		if e.ID > mark {
			fresh = append(fresh, e)
		}
	}
	if len(fresh) == 0 {
		return maxID
	}
	s.Stats.AggEntries += uint64(len(fresh))
	if debugApply {
		for _, e := range fresh {
			fmt.Printf("APPLY srv=%d src=%d dir=%s op=%v name=%s id=%d\n",
				s.cfg.ID, src, log.Dir.ID.String()[:8], e.Op, e.Name, e.ID)
		}
	}

	// Persist before applying: the owner's WAL now holds the entries, so
	// the source may mark them applied (§A.1 "no change-log entry is lost").
	// With compaction the batch group-commits: one synchronous WAL write
	// covers the batch, with a small per-record marshaling cost.
	wsp := s.cfg.Trace.Start(p, "wal:entries", "server")
	if s.cfg.Compaction {
		p.Compute(c.WALAppend + env.Duration(len(fresh))*c.LogAppend)
	}
	for _, e := range fresh {
		payload := u64(nil, uint64(src))
		payload = encodeEntry(payload, log.Dir, e)
		if !s.cfg.Compaction {
			p.Compute(c.WALAppend)
		}
		mustAppend(s.wal, recAggEntry, payload)
	}
	wsp.End()

	ek := log.Dir.Key.Encode()
	raw, ok := s.kv.GetView(ek)
	p.Compute(c.KVGet)
	if !ok {
		// The directory vanished (rmdir raced a straggling update); the
		// entries are orphans — consume them so logs drain (§5.2.3).
		s.Stats.Orphans += uint64(len(fresh))
		s.setAppliedMark(src, log.Dir.ID, maxID)
		return maxID
	}
	in, err := core.DecodeInode(raw)
	if err != nil {
		s.setAppliedMark(src, log.Dir.ID, maxID)
		return maxID
	}

	if s.cfg.Compaction {
		comp := core.Compact(fresh)
		comp.ApplyToAttr(&in.Attr, p.Now())
		p.Compute(c.KVGet + c.KVPut) // one attribute read-modify-write
		s.kv.Put(ek, core.EncodeInode(in))
		for _, op := range comp.Ops {
			dk := append(core.EntryPrefix(in.ID), op.Name...)
			if op.Put {
				s.kv.Put(dk, core.EncodeDirEntry(core.DirEntry{Name: op.Name, Type: op.Type, Perm: op.Perm}))
			} else {
				s.kv.Delete(dk)
			}
		}
		// Compacted entry-list operations touch distinct names, so they
		// apply in parallel across the server's cores — the intra-server
		// parallelism +Compaction restores (§5.3, Fig. 14).
		s.parallelCompute(p, len(comp.Ops), c.LogApplyEntry)
	} else {
		for _, e := range fresh {
			one := core.Compact([]core.LogEntry{e})
			one.ApplyToAttr(&in.Attr, p.Now())
			p.Compute(c.KVGet + c.KVPut + c.LogApplyEntry)
			s.kv.Put(ek, core.EncodeInode(in))
			dk := append(core.EntryPrefix(in.ID), e.Name...)
			switch e.Op {
			case core.OpCreate, core.OpMkdir:
				s.kv.Put(dk, core.EncodeDirEntry(core.DirEntry{Name: e.Name, Type: e.Type, Perm: e.Perm}))
			case core.OpDelete, core.OpRmdir:
				s.kv.Delete(dk)
			}
		}
	}
	s.setAppliedMark(src, log.Dir.ID, maxID)
	return maxID
}

// parallelCompute spreads n units of per-item service time over the node's
// cores: worker processes each burn a share concurrently.
func (s *Server) parallelCompute(p *env.Proc, n int, each env.Duration) {
	if n <= 0 || each <= 0 {
		return
	}
	lanes := s.cfg.Cores
	if lanes > n {
		lanes = n
	}
	if lanes <= 1 {
		p.Compute(env.Duration(n) * each)
		return
	}
	doneCh := make([]*env.Future, 0, lanes-1)
	per := n / lanes
	rem := n % lanes
	for i := 1; i < lanes; i++ {
		k := per
		if i < rem {
			k++
		}
		fut := env.NewFuture()
		doneCh = append(doneCh, fut)
		p.Spawn(func(wp *env.Proc) {
			wp.Compute(env.Duration(k) * each)
			fut.Complete(nil)
		})
	}
	k0 := per
	if rem > 0 {
		k0++
	}
	p.Compute(env.Duration(k0) * each)
	for _, fut := range doneCh {
		fut.Wait(p)
	}
}

// --- Proactive aggregation (§5.3) -------------------------------------------

// maybePush ships a change-log to its directory's owner when it filled an
// MTU or went idle. A server that stopped serving (FlushAll, recovery)
// skips: the flush path ships the backlog itself, and re-triggering here
// would spin — pushLog's early return plus its own re-trigger used to
// respawn each other at the same virtual instant, freezing the simulation.
func (s *Server) maybePush(dl *dirLog) {
	if !s.serving {
		return
	}
	dl.qmu.Lock()
	if dl.pushing || dl.log.Len() == 0 || dl.heldBy != 0 {
		dl.qmu.Unlock()
		return
	}
	dl.pushing = true
	snap := dl.log.Snapshot()
	dl.qmu.Unlock()
	s.env.Spawn(s.cfg.ID, func(p *env.Proc) { s.pushLog(p, dl, snap) })
}

func (s *Server) pushLog(p *env.Proc, dl *dirLog, snap []core.LogEntry) {
	defer func() {
		dl.qmu.Lock()
		dl.pushing = false
		again := s.serving && dl.log.Len() >= s.cfg.PushEntries
		dl.qmu.Unlock()
		if again {
			s.maybePush(dl)
		}
	}()
	if !s.serving {
		return
	}
	s.Stats.Pushes++
	msg := &wire.ChangePush{From: s.cfg.ID, Log: wire.DirLog{Dir: dl.ref, Entries: snap}}
	fut := env.NewFuture()
	s.mu.Lock()
	if s.pushWait == nil {
		s.pushWait = make(map[core.DirID]*env.Future)
	}
	s.pushWait[dl.ref.ID] = fut
	s.mu.Unlock()
	acked := false
	for try := 0; try < 8; try++ {
		if s.dead {
			break // recovery re-pushes from the WAL-rebuilt log
		}
		// Owner recomputed per retry: a migration can move the directory's
		// group mid-push, and the entries must chase the current owner.
		s.reply(p, s.ownerOfFP(dl.ref.FP), msg)
		if v, ok := fut.WaitTimeout(p, s.cfg.RetryTimeout); ok {
			ack := v.(*wire.ChangePushAck)
			s.ackEntries(dl, ack.MaxID)
			acked = true
			break
		}
		s.Stats.Retries++
	}
	if !acked {
		// The owner stayed unreachable: the entries remain pending here,
		// possibly behind a normal fingerprint. Keep the group scattered so
		// reads aggregate (and collect them) instead of serving stale state.
		s.markDirty(p, dl.ref.FP)
	}
	s.mu.Lock()
	if s.pushWait[dl.ref.ID] == fut {
		delete(s.pushWait, dl.ref.ID)
	}
	s.mu.Unlock()
}

// resetIdleTimer (re)arms the idle push trigger after an append.
func (s *Server) resetIdleTimer(dl *dirLog) {
	dl.qmu.Lock()
	if dl.idle != nil {
		dl.idle.Cancel()
	}
	dl.idle = s.env.After(s.cfg.PushIdle, func() { s.maybePush(dl) })
	dl.qmu.Unlock()
}

// handleChangePush applies a proactively pushed change-log at the owner and
// (re)starts the quiesce timer; when pushes stop arriving the owner
// aggregates on its own so the next read finds the directory normal (§5.3).
func (s *Server) handleChangePush(p *env.Proc, from env.NodeID, cp *wire.ChangePush) {
	p.Compute(s.cfg.Costs.Parse)
	fp := cp.Log.Dir.FP
	// A push routed here under a stale ring is dropped without an ack: the
	// pusher recomputes the owner from the ring on every retry, so the entries
	// chase the current owner (or stay pending behind a dirty mark). Applying
	// them here would strand acknowledged entries on a server reads no longer
	// reach.
	if s.checkOwnership(fp) != nil {
		return
	}
	if s.gateWait(p, fp) != nil {
		return
	}
	if s.checkOwnership(fp) != nil {
		return
	}
	s.fpEnter(fp)
	defer s.fpExit(fp)
	l := s.lockOf(cp.Log.Dir.Key)
	l.Lock(p)
	maxID := s.applyEntries(p, cp.From, cp.Log)
	l.Unlock()
	s.reply(p, cp.From, &wire.ChangePushAck{Dir: cp.Log.Dir.ID, MaxID: maxID})
	if cp.Final {
		return
	}
	s.mu.Lock()
	if t := s.quiesce[fp]; t != nil {
		t.Cancel()
	}
	s.quiesce[fp] = s.env.After(s.cfg.OwnerQuiesce, func() {
		if !s.serving {
			return
		}
		s.env.Spawn(s.cfg.ID, func(p *env.Proc) { s.aggregateFP(p, fp, nil) })
	})
	s.mu.Unlock()
}

// handleChangePushAck completes a pending push.
func (s *Server) handleChangePushAck(p *env.Proc, a *wire.ChangePushAck) {
	s.mu.Lock()
	fut := s.pushWait[a.Dir]
	s.mu.Unlock()
	if fut != nil {
		fut.Complete(a)
	}
}

// --- Invalidation (§5.2) -----------------------------------------------------

// addInval appends a directory to the invalidation list. Re-invalidating a
// directory bumps its sequence so clients that consumed the earlier entry
// still observe the new one.
func (s *Server) addInval(dir core.DirID) {
	if dir.IsZero() {
		return
	}
	s.mu.Lock()
	s.invalSeq++
	s.invalSet[dir] = s.invalSeq
	s.inval = append(s.inval, wire.InvalEntry{Seq: s.invalSeq, Dir: dir})
	s.mu.Unlock()
}

// handleInvalBroadcast appends directories announced by a peer.
func (s *Server) handleInvalBroadcast(p *env.Proc, from env.NodeID, b *wire.InvalBroadcast) {
	for _, d := range b.Dirs {
		s.addInval(d)
	}
	s.reply(p, from, &wire.InvalAck{From: s.cfg.ID})
}

// --- rmdir (§5.2.3) -----------------------------------------------------------

// doRmdir removes an empty directory: aggregate its pending updates first to
// decide emptiness against the latest state, broadcast invalidation, then
// commit the removal as an asynchronous update to the parent.
func (s *Server) doRmdir(p *env.Proc, req *wire.MutateReq) {
	c := &s.cfg.Costs
	key := core.Key{PID: req.Parent.ID, Name: req.Name}
	parentLog := s.clogOf(req.Parent)

	p.Compute(c.LockOp)
	if err := s.admitFP(p, key.Fingerprint()); err != nil {
		// Routed here under a stale ring (migration or reconfiguration in
		// flight): the record may live on the new owner — retry, don't
		// report ENOENT.
		resp := &wire.MutateResp{RespCommon: s.respCommon(&req.ReqCommon, err)}
		s.remember(req.Client, req.RPC, resp)
		s.reply(p, req.Client, resp)
		return
	}
	s.tallyFP(key.Fingerprint())
	// Pre-check existence and type without locks to learn the target id.
	p.Compute(c.KVGet)
	raw, ok := s.kv.GetView(key.Encode())
	if !ok {
		s.fpExit(key.Fingerprint())
		resp := &wire.MutateResp{RespCommon: s.respCommon(&req.ReqCommon, core.ErrNotExist)}
		s.remember(req.Client, req.RPC, resp)
		s.reply(p, req.Client, resp)
		return
	}
	in, derr := core.DecodeInode(raw)
	if derr != nil || in.Type != core.TypeDir {
		s.fpExit(key.Fingerprint())
		resp := &wire.MutateResp{RespCommon: s.respCommon(&req.ReqCommon, core.ErrNotDir)}
		s.remember(req.Client, req.RPC, resp)
		s.reply(p, req.Client, resp)
		return
	}
	target := core.DirRef{ID: in.ID, Key: key, FP: key.Fingerprint()}

	// Aggregate the target's fingerprint group BEFORE locking the target's
	// inode: collects every pending update to the directory and plants it in
	// every peer's invalidation list (Fig. 6 steps 4–7). Taking the inode
	// lock first could deadlock against a concurrent aggregation's apply
	// phase, which needs that lock.
	s.addInval(target.ID)
	if !s.aggregateFP(p, target.FP, &aggOpts{rmdir: true, dir: target.ID, force: true}) {
		// Emptiness cannot be decided against state that may be missing an
		// unreachable peer's acknowledged entries.
		s.fpExit(key.Fingerprint())
		resp := &wire.MutateResp{RespCommon: s.respCommon(&req.ReqCommon, core.ErrRetry)}
		s.remember(req.Client, req.RPC, resp)
		s.reply(p, req.Client, resp)
		return
	}

	parentLog.lock.RLock(p)
	kl := s.lockOf(key)
	kl.Lock(p)
	fail := func(err error) {
		s.fpExit(key.Fingerprint())
		kl.Unlock()
		parentLog.lock.RUnlock()
		resp := &wire.MutateResp{RespCommon: s.respCommon(&req.ReqCommon, err)}
		s.remember(req.Client, req.RPC, resp)
		s.reply(p, req.Client, resp)
	}
	if err := s.checkAncestors(&req.ReqCommon); err != nil {
		fail(err)
		return
	}
	// Parent ref is current (stale caches rejected above): re-key the
	// change-log if the parent was renamed since it was created.
	s.rekeyClog(parentLog, req.Parent)
	// Re-validate under the lock: the directory may have raced away.
	if !s.kv.Has(key.Encode()) {
		fail(core.ErrNotExist)
		return
	}

	// Emptiness check against the aggregated entry list.
	p.Compute(c.KVScanEntry)
	if s.kv.CountPrefix(core.EntryPrefix(target.ID)) != 0 {
		fail(core.ErrNotEmpty)
		return
	}

	// Commit the removal (step 8) and defer the parent update.
	entry := core.LogEntry{Time: p.Now(), Op: core.OpRmdir, Name: req.Name, Type: core.TypeDir}
	s.mu.Lock()
	s.nextEntry++
	entry.ID = s.nextEntry
	s.mu.Unlock()
	walRec := s.encodeCommit(core.OpRmdir, key, req.Parent, entry, in)
	p.Compute(c.WALAppend + c.KVDel)
	lsn := mustAppend(s.wal, recCommit, walRec)
	s.kv.Delete(key.Encode())

	if !s.cfg.Async {
		s.syncCommit(p, req, parentLog, entry, lsn, kl, core.DirID{})
		s.fpExit(key.Fingerprint())
		return
	}

	p.Compute(c.LogAppend)
	parentLog.qmu.Lock()
	parentLog.log.Append(entry)
	parentLog.walLSN[entry.ID] = lsn
	parentLog.qmu.Unlock()

	// As in doMutate, the dedup cache learns the response only after the
	// commit ack — replaying it earlier would acknowledge the rmdir before
	// its dirty-set insert is visible to reads.
	resp := &wire.MutateResp{RespCommon: s.respCommon(&req.ReqCommon, nil)}
	s.asyncCommit(p, req.Parent, parentLog, entry, resp, req.Client)
	s.remember(req.Client, req.RPC, resp)
	kl.Unlock()
	parentLog.lock.RUnlock()
	s.fpExit(key.Fingerprint())
	s.resetIdleTimer(parentLog)
}

// debugApply traces every applied change-log entry (development only).
var debugApply = false
