package server

// EnableApplyTrace toggles apply tracing (development diagnostics).
func EnableApplyTrace(v bool) { debugApply = v }
