package server

import (
	"bytes"
	"encoding/binary"
	"sort"

	"switchfs/internal/core"
	"switchfs/internal/env"
	"switchfs/internal/wal"
	"switchfs/internal/wire"
)

// Rename and hard links are the synchronous, multi-inode operations of the
// protocol (§5.2 "Rename", §5.5 "Support of hard links"). They run as
// two-phase-commit transactions; renames (and links) are serialized through
// the centralized coordinator, which both prevents distributed deadlock and
// provides the orphaned-loop check of §5.2.

// txnState is the participant-side context of a prepared transaction.
type txnState struct {
	id    uint64
	locks []*env.RWMutex
	ops   []wire.TxnOp
	done  *env.Future
	// lsn is the prepared-state WAL record, marked applied once the
	// decision resolves the transaction.
	lsn wal.LSN
}

// coordMutex serializes coordinator-side transactions. Stored per server but
// only the coordinator's is used.
var _ = sort.Ints // keep sort imported together with its use below

// handleRename coordinates a rename (§5.2): up to four inodes across up to
// four servers change together. If the source is a directory, its pending
// updates are aggregated first and its entry list migrates to the
// destination owner (the directory's placement follows its key).
func (s *Server) handleRename(p *env.Proc, req *wire.RenameReq) {
	c := &s.cfg.Costs
	p.Compute(c.Parse)
	if s.replayIfDuplicate(p, &req.ReqCommon) {
		return
	}
	if !s.begin(&req.ReqCommon) {
		return
	}
	s.Stats.Ops++
	err := s.doRename(p, req)
	resp := &wire.RenameResp{RespCommon: s.respCommon(&req.ReqCommon, err)}
	s.remember(req.Client, req.RPC, resp)
	s.reply(p, req.Client, resp)
}

func (s *Server) doRename(p *env.Proc, req *wire.RenameReq) error {
	if err := s.checkAncestors(&req.ReqCommon); err != nil {
		return err
	}
	srcKey := core.Key{PID: req.SrcParent.ID, Name: req.SrcName}
	dstKey := core.Key{PID: req.DstParent.ID, Name: req.DstName}

	// Aggregate both parents first (outside the serialized section — these
	// overlap across concurrent renames): the rename's direct directory
	// updates must serialize after every already-committed deferred update
	// to those directories, otherwise a later aggregation would re-order a
	// pending create after the rename's entry-list change.
	if err := s.remoteAggregate(p, s.ownerOfFP(req.SrcParent.FP), req.SrcParent.FP); err != nil {
		return err
	}
	if req.DstParent.FP != req.SrcParent.FP {
		if err := s.remoteAggregate(p, s.ownerOfFP(req.DstParent.FP), req.DstParent.FP); err != nil {
			return err
		}
	}

	// Read the source inode to learn its type; if it is a directory,
	// aggregate it first so the migrated state is complete (§5.2: "if the
	// source is a directory, SwitchFS initiates an aggregation at the
	// beginning of rename").
	srcOwner := s.ownerOfKey(srcKey)
	raw, err := s.readRemoteInode(p, srcOwner, srcKey)
	if err != nil {
		return err
	}
	in, derr := core.DecodeInode(raw)
	if derr != nil {
		return core.ErrInvalid
	}
	if srcKey == dstKey {
		// Renaming an existing object to itself is a no-op; the existence
		// read above already rejected the missing source (POSIX: rename of
		// a nonexistent path to itself is ENOENT, not success).
		return nil
	}
	isDir := in.Type == core.TypeDir

	// Serialize the transaction phase at the coordinator (§5.2: centralized
	// rename coordinator). Serialization both orders directory renames for
	// the loop check and excludes distributed lock-order cycles between
	// concurrent rename transactions.
	s.renameMu.Lock(p)
	defer s.renameMu.Unlock()
	var dentries []wire.TxnOp
	if isDir {
		// Orphaned-loop check: moving a directory under its own descendant
		// would disconnect the subtree (§5.2). The client supplied the
		// destination's ancestor chain during resolution.
		for _, a := range req.Ancestors {
			if a == in.ID {
				return core.ErrLoop
			}
		}
		if err := s.remoteAggregate(p, srcOwner, srcKey.Fingerprint()); err != nil {
			return err
		}
		raw, err = s.readRemoteInode(p, srcOwner, srcKey)
		if err != nil {
			return err
		}
		if in, derr = core.DecodeInode(raw); derr != nil {
			return core.ErrInvalid
		}
		// The entry list migrates with the inode: collect it for replay at
		// the destination owner.
		dentries, err = s.collectDentries(p, srcOwner, in.ID, srcKey.Fingerprint())
		if err != nil {
			return err
		}
	}

	// Participants and their prepare-phase checks/ops.
	now := p.Now()
	dstOwner := s.ownerOfKey(dstKey)
	type part struct {
		ops    []wire.TxnOp
		checks []wire.TxnCheck
	}
	parts := map[env.NodeID]*part{}
	add := func(n env.NodeID) *part {
		if parts[n] == nil {
			parts[n] = &part{}
		}
		return parts[n]
	}
	et := in.Type
	// Source owner: delete the source inode (and its dentries if a dir).
	sp := add(srcOwner)
	sp.checks = append(sp.checks, wire.TxnCheck{Key: srcKey, MustExist: true})
	sp.ops = append(sp.ops, wire.TxnOp{Kind: wire.TxnDelInode, Key: srcKey})
	if isDir {
		sp.ops = append(sp.ops, wire.TxnOp{Kind: wire.TxnDelDentries,
			Dir: core.DirRef{ID: in.ID}})
	}
	// Destination owner: create the destination inode with the same body.
	moved := *in
	dp := add(dstOwner)
	dp.checks = append(dp.checks, wire.TxnCheck{Key: dstKey, MustNotExist: true})
	dp.ops = append(dp.ops, wire.TxnOp{Kind: wire.TxnPutInode, Key: dstKey,
		Inode: core.EncodeInode(&moved)})
	dp.ops = append(dp.ops, dentries...)
	// Parent owners: synchronous entry-list/attribute updates.
	spo := add(s.ownerOfFP(req.SrcParent.FP))
	spo.ops = append(spo.ops, wire.TxnOp{Kind: wire.TxnDirUpdate, Dir: req.SrcParent,
		Entry: core.LogEntry{ID: s.nextTxnEntryID(), Time: now, Op: core.OpDelete,
			Name: req.SrcName, Type: et}})
	dpo := add(s.ownerOfFP(req.DstParent.FP))
	dpo.ops = append(dpo.ops, wire.TxnOp{Kind: wire.TxnDirUpdate, Dir: req.DstParent,
		Entry: core.LogEntry{ID: s.nextTxnEntryID(), Time: now, Op: core.OpCreate,
			Name: req.DstName, Type: et, Perm: in.Perm}})

	ids := sortedNodeIDs(parts)
	sorted := make([][]wire.TxnOp, len(ids))
	sortedChecks := make([][]wire.TxnCheck, len(ids))
	for i, n := range ids {
		sorted[i] = parts[n].ops
		sortedChecks[i] = parts[n].checks
	}
	if err := s.runTxn(p, ids, sorted, sortedChecks, false); err != nil {
		return err
	}
	if isDir {
		// Clients may hold cached metadata for the renamed directory under
		// its old path: invalidate everywhere (§5.2).
		s.broadcastInval(p, []core.DirID{in.ID})
	}
	return nil
}

// handleLink coordinates hard-link creation (§5.5): split the source file
// into reference + attribute objects if needed, bump the link count, create
// the new reference, and update the destination parent.
func (s *Server) handleLink(p *env.Proc, req *wire.LinkReq) {
	p.Compute(s.cfg.Costs.Parse)
	if s.replayIfDuplicate(p, &req.ReqCommon) {
		return
	}
	if !s.begin(&req.ReqCommon) {
		return
	}
	s.Stats.Ops++
	err := s.doLink(p, req)
	resp := &wire.LinkResp{RespCommon: s.respCommon(&req.ReqCommon, err)}
	s.remember(req.Client, req.RPC, resp)
	s.reply(p, req.Client, resp)
}

func (s *Server) doLink(p *env.Proc, req *wire.LinkReq) error {
	if err := s.checkAncestors(&req.ReqCommon); err != nil {
		return err
	}
	srcKey := core.Key{PID: req.SrcParent.ID, Name: req.SrcName}
	dstKey := core.Key{PID: req.DstParent.ID, Name: req.DstName}
	// As in rename, the destination parent's deferred updates must apply
	// before the link's direct entry-list insertion (outside the serialized
	// section).
	if err := s.remoteAggregate(p, s.ownerOfFP(req.DstParent.FP), req.DstParent.FP); err != nil {
		return err
	}
	s.renameMu.Lock(p)
	defer s.renameMu.Unlock()

	srcOwner := s.ownerOfKey(srcKey)
	raw, err := s.readRemoteInode(p, srcOwner, srcKey)
	if err != nil {
		return err
	}
	in, derr := core.DecodeInode(raw)
	if derr != nil {
		return core.ErrInvalid
	}
	if in.Type == core.TypeDir {
		return core.ErrIsDir
	}

	now := p.Now()
	fid := in.File
	parts := map[env.NodeID]*struct {
		ops    []wire.TxnOp
		checks []wire.TxnCheck
	}{}
	add := func(n env.NodeID) *struct {
		ops    []wire.TxnOp
		checks []wire.TxnCheck
	} {
		if parts[n] == nil {
			parts[n] = &struct {
				ops    []wire.TxnOp
				checks []wire.TxnCheck
			}{}
		}
		return parts[n]
	}

	if fid == 0 {
		// First link: split the file into a reference and a shared
		// attribute object (§5.5).
		fid = core.FileID(core.Hash64(srcKey.PID, srcKey.Name) | 1)
		attrKey := fileAttrKey(fid)
		attr := *in
		attr.File = fid
		attr.Nlink = 2
		ref := *in
		ref.File = fid
		sp := add(srcOwner)
		sp.checks = append(sp.checks, wire.TxnCheck{Key: srcKey, MustExist: true})
		sp.ops = append(sp.ops, wire.TxnOp{Kind: wire.TxnPutInode, Key: srcKey,
			Inode: core.EncodeInode(&ref)})
		ao := add(s.ownerOfKey(attrKey))
		ao.ops = append(ao.ops, wire.TxnOp{Kind: wire.TxnPutInode, Key: attrKey,
			Inode: core.EncodeInode(&attr)})
	} else {
		attrKey := fileAttrKey(fid)
		ao := add(s.ownerOfKey(attrKey))
		ao.ops = append(ao.ops, wire.TxnOp{Kind: wire.TxnAdjustNlink, Key: attrKey,
			Entry: core.LogEntry{ID: 1}})
	}
	newRef := *in
	newRef.File = fid
	do := add(s.ownerOfKey(dstKey))
	do.checks = append(do.checks, wire.TxnCheck{Key: dstKey, MustNotExist: true})
	do.ops = append(do.ops, wire.TxnOp{Kind: wire.TxnPutInode, Key: dstKey,
		Inode: core.EncodeInode(&newRef)})
	po := add(s.ownerOfFP(req.DstParent.FP))
	po.ops = append(po.ops, wire.TxnOp{Kind: wire.TxnDirUpdate, Dir: req.DstParent,
		Entry: core.LogEntry{ID: s.nextTxnEntryID(), Time: now, Op: core.OpCreate,
			Name: req.DstName, Type: in.Type, Perm: in.Perm}})

	ids := sortedNodeIDs(parts)
	ops := make([][]wire.TxnOp, len(ids))
	checks := make([][]wire.TxnCheck, len(ids))
	for i, n := range ids {
		ops[i] = parts[n].ops
		checks[i] = parts[n].checks
	}
	return s.runTxn(p, ids, ops, checks, false)
}

// runTxn drives two-phase commit over the participants. auto skips the
// prepare phase for commutative single-participant updates.
//
// A prepared participant holds its key locks until it learns the outcome, so
// the decision phase must terminate at every participant: giving up after a
// retry budget would leave those locks held forever — every later operation
// on the keys (including plain stats, which share the inode locks) would
// park behind them. The coordinator therefore (a) drives an explicit abort
// decision when the prepare phase gives up, and (b) retransmits the decision
// until every participant acked or this incarnation fail-stops; a
// participant that crashed meanwhile acks the duplicate from its fresh
// incarnation. Coordinator crashes are covered by the participant-side
// termination protocol (monitorTxn / handleTxnStatus): commits are persisted
// to the WAL before the first decision packet, anything else is presumed
// aborted.
//
//detlint:wal-before-send recTxnCommit via=driveDecision
func (s *Server) runTxn(p *env.Proc, parts []env.NodeID, ops [][]wire.TxnOp,
	checks [][]wire.TxnCheck, auto bool) error {

	tsp := s.cfg.Trace.Start(p, "txn:run", "server")
	defer tsp.End()
	s.mu.Lock()
	s.nextTxn++
	id := uint64(s.cfg.ID)<<40 | s.nextTxn
	if s.txnVotes == nil {
		s.txnVotes = make(map[uint64]*txnVotes)
	}
	tv := &txnVotes{expect: make(map[env.NodeID]bool), done: env.NewFuture()}
	for _, n := range parts {
		tv.expect[n] = true
	}
	s.txnVotes[id] = tv
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.txnVotes, id)
		s.mu.Unlock()
	}()

	// Prepare.
	prepared := true
	psp := s.cfg.Trace.Start(p, "txn:prepare", "server")
	for try := 0; ; try++ {
		if s.dead {
			psp.End()
			return core.ErrTimeout
		}
		for i, n := range parts {
			var ck []wire.TxnCheck
			if checks != nil {
				ck = checks[i]
			}
			s.reply(p, n, &wire.TxnPrepare{Txn: id, From: s.cfg.ID, Ops: ops[i], Check: ck})
		}
		if _, ok := tv.done.WaitTimeout(p, s.cfg.RetryTimeout); ok {
			break
		}
		s.Stats.Retries++
		if try >= maxAggRetries {
			prepared = false
			break
		}
	}
	psp.End()
	if auto {
		// Auto participants apply at prepare time and take no locks — a
		// given-up prepare leaves nothing to abort.
		if !prepared {
			return core.ErrRetry
		}
		return tv.err
	}
	// Decision. A commit outcome is fixed in the WAL before the first
	// decision packet leaves (recordCommit); aborts are presumed and
	// deliberately unlogged, so the two outcomes drive the decision from
	// separate branches and walorder proves the ordering on the commit one.
	commit := prepared && tv.err == nil
	var acked bool
	if commit {
		s.recordCommit(p, id, parts)
		acked = s.driveDecision(p, id, parts, true)
	} else {
		//detlint:ignore walorder -- presumed abort: an incarnation with no record answers abort, the same outcome
		acked = s.driveDecision(p, id, parts, false)
	}
	if acked && commit {
		s.ackDecision(id)
	}
	if s.dead {
		return core.ErrTimeout
	}
	if !prepared {
		return core.ErrRetry
	}
	return tv.err
}

// recordCommit fixes a commit outcome before any decision packet leaves:
// WAL-logged with the participant set so a restarted coordinator both
// answers in-doubt status queries with commit and re-drives the decision to
// every participant. Aborts are never recorded — an incarnation with no
// record answers presumed-abort, which is the same outcome.
func (s *Server) recordCommit(p *env.Proc, id uint64, parts []env.NodeID) {
	// WAL first, in-memory flag after: the compute parks, and a status
	// query answered from the flag in that window would be a commit
	// decision a crash could then erase — one participant committed, the
	// restarted coordinator presuming abort for the rest. Until the append
	// lands, queries see txnVotes and answer Pending.
	wsp := s.cfg.Trace.Start(p, "wal:txn-commit", "server")
	p.Compute(s.cfg.Costs.WALAppend)
	payload := u64(nil, id)
	for _, n := range parts {
		payload = u64(payload, uint64(n))
	}
	lsn := mustAppend(s.wal, recTxnCommit, payload)
	wsp.End()
	s.mu.Lock()
	s.txnDecided[id] = true
	s.txnWAL[id] = lsn
	s.mu.Unlock()
}

// driveDecision retransmits a decision until every participant acked. The
// retry budget keeps a never-recovering participant from holding this
// process alive forever; on give-up the recorded commit stays, and either
// the participant's termination protocol pulls it (TxnStatusReq) or the
// next coordinator recovery re-drives it. Reports whether all acks arrived.
func (s *Server) driveDecision(p *env.Proc, id uint64, parts []env.NodeID, commit bool) bool {
	s.mu.Lock()
	td := &txnVotes{expect: make(map[env.NodeID]bool), done: env.NewFuture()}
	for _, n := range parts {
		td.expect[n] = true
	}
	s.txnDones[id] = td
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.txnDones, id)
		s.mu.Unlock()
	}()
	dsp := s.cfg.Trace.Start(p, "txn:decision", "server")
	defer dsp.End()
	for try := 0; ; try++ {
		if s.dead {
			return false
		}
		for _, n := range parts {
			s.reply(p, n, &wire.TxnDecision{Txn: id, Commit: commit})
		}
		if _, ok := td.done.WaitTimeout(p, s.cfg.RetryTimeout); ok {
			return true
		}
		s.Stats.Retries++
		if try >= maxAggRetries {
			return false
		}
	}
}

// ackDecision retires a fully-acknowledged commit: every participant
// acked, so no one can be in doubt anymore — the in-memory record is
// droppable (bounding txnDecided to the in-flight set) and the WAL record
// is marked applied so replay need not rebuild or re-drive it.
func (s *Server) ackDecision(id uint64) {
	s.mu.Lock()
	delete(s.txnDecided, id)
	lsn, ok := s.txnWAL[id]
	delete(s.txnWAL, id)
	s.mu.Unlock()
	if ok {
		mustMark(s.wal, lsn)
	}
}

// handleTxnStatus answers a participant's termination-protocol query.
func (s *Server) handleTxnStatus(p *env.Proc, req *wire.TxnStatusReq) {
	p.Compute(s.cfg.Costs.Parse)
	resp := &wire.TxnStatusResp{Ctl: req.Ctl, Txn: req.Txn}
	s.mu.Lock()
	if _, ok := s.txnDecided[req.Txn]; ok {
		resp.Commit = true // only commits are recorded
	} else if s.txnVotes[req.Txn] != nil || !s.serving {
		// Still collecting votes (the decision phase will reach the
		// participant), or this incarnation has not finished recovering —
		// either way the outcome is not known *yet*.
		resp.Pending = true
	}
	// Otherwise: no record of the transaction — presumed abort (aborts are
	// never recorded; decided-but-unacked aborts resolve to the same answer
	// once the abort's decision phase ends and txnVotes is dropped).
	s.mu.Unlock()
	s.reply(p, req.From, resp)
}

// redriveCommits re-sends every replayed, still-unacknowledged commit
// decision after a coordinator restart (§5.4.2 extension): a participant
// that already applied it acks the duplicate, an in-doubt one applies and
// acks — once all participants answered, the record retires (WAL-marked)
// instead of leaking into every future replay.
func (s *Server) redriveCommits(p *env.Proc) {
	redrives := s.txnRedrive
	s.txnRedrive = nil
	for _, rd := range redrives {
		if s.driveDecision(p, rd.txn, rd.parts, true) {
			s.ackDecision(rd.txn)
		}
	}
}

// inDoubtAfter is how long a prepared participant waits for the decision
// before starting to poll the coordinator. Generous: with a live coordinator
// the decision retransmits on RetryTimeout and always wins this race.
func (s *Server) inDoubtAfter() env.Duration { return 4 * s.cfg.RetryTimeout }

// watchTxn arms the participant-side termination protocol for a prepared
// transaction: if the decision has not arrived after inDoubtAfter, a monitor
// process polls the coordinator until the outcome is known and applies it.
// Without this, a coordinator crash strands the participant's key locks
// forever (every later operation on those keys would park behind them).
func (s *Server) watchTxn(txn uint64, coord env.NodeID) {
	s.env.After(s.inDoubtAfter(), func() {
		s.mu.Lock()
		_, pending := s.txns[txn]
		s.mu.Unlock()
		if !pending || s.dead {
			return
		}
		s.env.Spawn(s.cfg.ID, func(p *env.Proc) { s.monitorTxn(p, txn, coord) })
	})
}

func (s *Server) monitorTxn(p *env.Proc, txn uint64, coord env.NodeID) {
	// Polling is bounded: against a coordinator that never comes back the
	// transaction cannot be terminated safely (2PC's blocking case —
	// unilateral abort could break atomicity against a commit some other
	// participant applied), so after the budget the monitor stops and the
	// keys stay locked. Operations on them then fail with client-side
	// timeouts — a detectable wedge — instead of the monitor keeping the
	// simulation alive forever. Validated plans always recover crashes, so
	// the budget is only reachable under hand-written scenarios.
	for try := 0; try < maxAggRetries; try++ {
		if s.dead {
			return
		}
		s.mu.Lock()
		_, pending := s.txns[txn]
		s.mu.Unlock()
		if !pending {
			return // decision arrived while we slept or polled
		}
		v, err := s.ctlCall(p, coord, func(ctl uint64) wire.Msg {
			return &wire.TxnStatusReq{Ctl: ctl, From: s.cfg.ID, Txn: txn}
		})
		if err != nil {
			// Coordinator unreachable (crashed or partitioned): keep
			// waiting — presumed abort may only be applied on a definitive
			// answer from a coordinator incarnation.
			p.Sleep(s.inDoubtAfter())
			continue
		}
		resp := v.(*wire.TxnStatusResp)
		if resp.Pending {
			p.Sleep(s.inDoubtAfter())
			continue
		}
		s.handleTxnDecision(p, &wire.TxnDecision{Txn: txn, Commit: resp.Commit})
		return
	}
}

// runRemoteTxn is the commutative single-shot variant used by adjustNlink.
func (s *Server) runRemoteTxn(p *env.Proc, parts []env.NodeID, ops [][]wire.TxnOp,
	checks [][]wire.TxnCheck) error {
	return s.runTxn(p, parts, ops, checks, true)
}

// recordVote remembers the prepare outcome for retransmission replay.
func (s *Server) recordVote(txn uint64, errno core.Errno) {
	s.mu.Lock()
	if s.txnVoted == nil {
		s.txnVoted = make(map[uint64]core.Errno)
	}
	s.txnVoted[txn] = errno
	s.mu.Unlock()
}

// txnVotes collects prepare votes (or decision acks).
type txnVotes struct {
	expect map[env.NodeID]bool
	err    error
	done   *env.Future
}

// handleTxnPrepare is the participant side of phase one: lock keys in global
// order, run checks, vote.
//
//detlint:wal-before-send recTxnPrepare via=reply
func (s *Server) handleTxnPrepare(p *env.Proc, tp *wire.TxnPrepare) {
	c := &s.cfg.Costs
	p.Compute(c.Parse + c.TxnOverhead)
	// Retransmission dedup: the first prepare may block acquiring locks, so
	// a duplicate must never run a second lock acquisition — the zombie
	// would hold the keys forever after the decision released the original.
	s.mu.Lock()
	if s.txnVoted == nil {
		s.txnVoted = make(map[uint64]core.Errno)
		s.txnStarted = make(map[uint64]bool)
	}
	if errno, voted := s.txnVoted[tp.Txn]; voted {
		// Replay the recorded vote.
		s.mu.Unlock()
		//detlint:ignore walorder -- vote replay: the original execution already ordered the prepare record before this vote
		s.reply(p, tp.From, &wire.TxnVote{Txn: tp.Txn, From: s.cfg.ID, Err: errno})
		return
	}
	if s.txnStarted[tp.Txn] {
		// Original still acquiring locks; it will vote. Drop the duplicate.
		s.mu.Unlock()
		return
	}
	s.txnStarted[tp.Txn] = true
	s.txnLog = append(s.txnLog, tp.Txn)
	if len(s.txnLog) > dedupWindow {
		old := s.txnLog[0]
		s.txnLog = s.txnLog[1:]
		delete(s.txnStarted, old)
		delete(s.txnVoted, old)
	}
	s.mu.Unlock()

	// One-shot commutative application (adjustNlink).
	autoOnly := true
	for _, op := range tp.Ops {
		if op.Kind != wire.TxnAdjustNlink {
			autoOnly = false
		}
	}
	if autoOnly && len(tp.Check) == 0 {
		// Ownership + arrival-gate admission per touched group: an nlink
		// adjustment routed under a stale ring (or racing an inbound
		// migration copy) must vote retry rather than apply against a store
		// that does not — or no longer does — hold the attribute object.
		afps := txnFPs(tp.Ops, nil)
		if aerr := s.admitFPs(p, afps); aerr != nil {
			s.recordVote(tp.Txn, core.ErrnoOf(aerr))
			//detlint:ignore walorder -- retry vote: nothing was applied, nothing to log
			s.reply(p, tp.From, &wire.TxnVote{Txn: tp.Txn, From: s.cfg.ID, Err: core.ErrnoOf(aerr)})
			return
		}
		var err error
		for _, op := range tp.Ops {
			delta := int32(int64(op.Entry.ID))
			if e := s.applyNlink(p, op.Key, delta); e != nil && err == nil {
				err = e
			}
		}
		s.exitFPs(afps)
		s.recordVote(tp.Txn, core.ErrnoOf(err))
		//detlint:ignore walorder -- commutative auto-apply: durability came from recInode inside applyNlink; there is no prepared state to log
		s.reply(p, tp.From, &wire.TxnVote{Txn: tp.Txn, From: s.cfg.ID, Err: core.ErrnoOf(err)})
		return
	}

	// Ownership + arrival-gate admission over the transaction's whole
	// fingerprint footprint, before any lock is taken. The busy references
	// are held through lock acquisition, the checks, and the prepared-state
	// WAL record; once the transaction registers in s.txns the prepared-txn
	// scan (preparedTxnOnFP) keeps migration out and the references drop —
	// a group touched by a prepared-but-undecided transaction never
	// migrates, so the decision always finds the keys where they were
	// prepared.
	fps := txnFPs(tp.Ops, tp.Check)
	if aerr := s.admitFPs(p, fps); aerr != nil {
		s.recordVote(tp.Txn, core.ErrnoOf(aerr))
		//detlint:ignore walorder -- retry vote: nothing was prepared; presumed abort needs no record
		s.reply(p, tp.From, &wire.TxnVote{Txn: tp.Txn, From: s.cfg.ID, Err: core.ErrnoOf(aerr)})
		return
	}
	st := &txnState{id: tp.Txn, ops: tp.Ops}
	st.locks = s.lockTxnKeys(p, tp.Ops, tp.Check)

	var err error
	for _, ck := range tp.Check {
		p.Compute(c.KVGet)
		raw, ok := s.kv.Get(ck.Key.Encode())
		switch {
		case ck.MustExist && !ok:
			err = core.ErrNotExist
		case ck.MustNotExist && ok:
			err = core.ErrExist
		case ck.MustExist && ck.IsDir:
			if in, derr := core.DecodeInode(raw); derr != nil || in.Type != core.TypeDir {
				err = core.ErrNotDir
			}
		}
		if err != nil {
			break
		}
	}
	if err != nil {
		for _, l := range st.locks {
			l.Unlock()
		}
		s.exitFPs(fps)
		s.recordVote(tp.Txn, core.ErrnoOf(err))
		//detlint:ignore walorder -- abort vote: nothing was prepared; presumed abort needs no record
		s.reply(p, tp.From, &wire.TxnVote{Txn: tp.Txn, From: s.cfg.ID, Err: core.ErrnoOf(err)})
		return
	}
	// Persist the prepared state before the vote leaves: once the
	// coordinator may commit on our vote, a restarted incarnation of this
	// participant must still be able to APPLY that commit — acking a
	// re-driven decision without the ops would retire a partially-applied
	// transaction (a rename whose delete landed but whose insert vanished
	// with the crash). Recovery rebuilds the locks, the vote, and the
	// monitor from this record; the decision marks it applied.
	wsp := s.cfg.Trace.Start(p, "wal:txn-prepare", "server")
	p.Compute(c.WALAppend)
	st.lsn = mustAppend(s.wal, recTxnPrepare, encodeTxnPrepare(tp.Txn, tp.From, tp.Ops))
	wsp.End()
	s.mu.Lock()
	s.txns[tp.Txn] = st
	s.mu.Unlock()
	// Registered: the prepared-txn scan now covers the footprint, in the same
	// event as the registration — at no instant is the group neither busy nor
	// prepared.
	s.exitFPs(fps)
	s.recordVote(tp.Txn, core.ErrnoOK)
	// Prepared and locked: arm the termination protocol in case the
	// coordinator dies before the decision reaches us.
	s.watchTxn(tp.Txn, tp.From)
	s.reply(p, tp.From, &wire.TxnVote{Txn: tp.Txn, From: s.cfg.ID})
}

// lockTxnKeys collects, orders (global key order — defense in depth against
// lock cycles between transactions) and acquires the locks a prepared
// transaction holds until its decision.
//
//detlint:lock-escapes the acquired key locks are returned to the caller and held in the prepared-txn record until handleTxnDecision releases them
func (s *Server) lockTxnKeys(p *env.Proc, ops []wire.TxnOp, checks []wire.TxnCheck) []*env.RWMutex {
	type lk struct {
		key  core.Key
		lock *env.RWMutex
	}
	var lks []lk
	seen := map[string]bool{}
	addKey := func(k core.Key) {
		ek := string(k.Encode())
		if !seen[ek] {
			seen[ek] = true
			lks = append(lks, lk{key: k, lock: s.lockOf(k)})
		}
	}
	for _, op := range ops {
		switch op.Kind {
		case wire.TxnPutInode, wire.TxnDelInode, wire.TxnAdjustNlink:
			addKey(op.Key)
		case wire.TxnDirUpdate:
			addKey(op.Dir.Key)
		}
	}
	for _, ck := range checks {
		addKey(ck.Key)
	}
	sort.Slice(lks, func(i, j int) bool {
		return bytes.Compare(lks[i].key.Encode(), lks[j].key.Encode()) < 0
	})
	locks := make([]*env.RWMutex, 0, len(lks))
	for _, l := range lks {
		l.lock.Lock(p)
		locks = append(locks, l.lock)
	}
	return locks
}

// encodeTxnPrepare packs a prepared transaction's durable state: txn id,
// coordinator, and the op list (checks already validated — only the
// appliable ops matter to a restarted incarnation).
func encodeTxnPrepare(txn uint64, coord env.NodeID, ops []wire.TxnOp) []byte {
	b := u64(nil, txn)
	b = u64(b, uint64(coord))
	b = u64(b, uint64(len(ops)))
	for _, op := range ops {
		b = append(b, byte(op.Kind))
		k := op.Key.Encode()
		b = u64(b, uint64(len(k)))
		b = append(b, k...)
		b = u64(b, uint64(len(op.Inode)))
		b = append(b, op.Inode...)
		b = encodeEntry(b, op.Dir, op.Entry)
	}
	return b
}

func decodeTxnPrepare(b []byte) (txn uint64, coord env.NodeID, ops []wire.TxnOp) {
	txn = binary.BigEndian.Uint64(b)
	coord = env.NodeID(binary.BigEndian.Uint64(b[8:]))
	n := binary.BigEndian.Uint64(b[16:])
	b = b[24:]
	ops = make([]wire.TxnOp, 0, n)
	for i := uint64(0); i < n; i++ {
		var op wire.TxnOp
		op.Kind = wire.TxnKind(b[0])
		b = b[1:]
		kl := binary.BigEndian.Uint64(b)
		b = b[8:]
		if key, err := core.DecodeKey(b[:kl]); err == nil {
			op.Key = key
		}
		b = b[kl:]
		il := binary.BigEndian.Uint64(b)
		b = b[8:]
		if il > 0 {
			op.Inode = append([]byte(nil), b[:il]...)
		}
		b = b[il:]
		op.Dir, op.Entry, b = decodeEntry(b)
		ops = append(ops, op)
	}
	return txn, coord, ops
}

// rearmPreparedTxns rebuilds the in-doubt participant state replayed from
// the WAL (§5.4.2 extension): re-acquire the key locks, replay the recorded
// vote for retransmitted prepares, and arm the termination monitor. Runs on
// the recovery process before this incarnation serves.
func (s *Server) rearmPreparedTxns(p *env.Proc) {
	rearms := s.txnRearm
	s.txnRearm = nil
	for _, ra := range rearms {
		st := &txnState{id: ra.txn, ops: ra.ops, lsn: ra.lsn}
		st.locks = s.lockTxnKeys(p, ra.ops, nil)
		s.mu.Lock()
		if s.txnVoted == nil {
			s.txnVoted = make(map[uint64]core.Errno)
			s.txnStarted = make(map[uint64]bool)
		}
		s.txns[ra.txn] = st
		s.txnStarted[ra.txn] = true
		s.txnVoted[ra.txn] = core.ErrnoOK
		s.txnLog = append(s.txnLog, ra.txn)
		s.mu.Unlock()
		s.watchTxn(ra.txn, ra.coord)
	}
}

// handleTxnDecision is the participant side of phase two.
func (s *Server) handleTxnDecision(p *env.Proc, td *wire.TxnDecision) {
	c := &s.cfg.Costs
	s.mu.Lock()
	st := s.txns[td.Txn]
	delete(s.txns, td.Txn)
	s.mu.Unlock()
	if st == nil {
		// Duplicate decision: ack again.
		s.reply(p, s.cfg.Coordinator, &wire.TxnDone{Txn: td.Txn, From: s.cfg.ID})
		return
	}
	// Busy references re-taken in the same event as the deregistration above:
	// the apply phase below parks, and without them a migration could observe
	// the group neither busy nor prepared and copy it away mid-apply.
	fps := txnFPs(st.ops, nil)
	for _, fp := range fps {
		s.fpEnter(fp)
	}
	if td.Commit {
		for _, op := range st.ops {
			switch op.Kind {
			case wire.TxnPutInode:
				p.Compute(c.WALAppend + c.KVPut)
				in, err := core.DecodeInode(op.Inode)
				if err == nil {
					mustAppend(s.wal, recInode, encodeInodeRec(op.Key, in))
					s.kv.Put(op.Key.Encode(), op.Inode)
				}
			case wire.TxnDelInode:
				p.Compute(c.WALAppend + c.KVDel)
				mustAppend(s.wal, recInode, encodeInodeRec(op.Key, nil))
				s.kv.Delete(op.Key.Encode())
			case wire.TxnDirUpdate:
				// Synchronous single-entry directory update, logged like an
				// aggregation application for recovery. The pseudo-source
				// keeps the exactly-once watermark separate from the
				// coordinator's own change-log entries.
				s.applyEntries(p, s.cfg.Coordinator|txnSrcFlag, wire.DirLog{
					Dir: op.Dir, Entries: []core.LogEntry{op.Entry}})
			case wire.TxnAdjustNlink:
				s.applyNlink(p, op.Key, int32(int64(op.Entry.ID)))
			case wire.TxnPutDentry:
				p.Compute(c.WALAppend + c.KVPut)
				mustAppend(s.wal, recDentry,
					encodeDentryRec(op.Dir.ID, op.Entry.Name, true, op.Entry.Type, op.Entry.Perm))
				dk := append(core.EntryPrefix(op.Dir.ID), op.Entry.Name...)
				s.kv.Put(dk, core.EncodeDirEntry(core.DirEntry{
					Name: op.Entry.Name, Type: op.Entry.Type, Perm: op.Entry.Perm}))
			case wire.TxnDelDentries:
				p.Compute(c.WALAppend)
				mustAppend(s.wal, recDelDentries, op.Dir.ID.AppendBinary(nil))
				prefix := core.EntryPrefix(op.Dir.ID)
				var keys [][]byte
				s.kv.Scan(prefix, func(k, v []byte) bool {
					keys = append(keys, append([]byte(nil), k...))
					return true
				})
				p.Compute(env.Duration(len(keys)) * c.KVDel)
				for _, k := range keys {
					s.kv.Delete(k)
				}
			}
		}
	}
	for _, l := range st.locks {
		l.Unlock()
	}
	// Resolved: the prepared-state record need not be rebuilt on replay.
	mustMark(s.wal, st.lsn)
	s.exitFPs(fps)
	s.reply(p, s.cfg.Coordinator, &wire.TxnDone{Txn: td.Txn, From: s.cfg.ID})
}
