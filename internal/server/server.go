// Package server implements the SwitchFS metadata server (paper §4.2, §5):
// asynchronous double-inode operations with per-directory change-logs,
// directory reads with switch-coordinated aggregation, change-log compaction,
// proactive aggregation, lazy client-cache invalidation, rename and hard-link
// transactions, and WAL-based crash recovery.
package server

import (
	"encoding/binary"
	"sort"
	"sync"

	"switchfs/internal/core"
	"switchfs/internal/env"
	"switchfs/internal/kv"
	"switchfs/internal/ring"
	"switchfs/internal/trace"
	"switchfs/internal/wal"
	"switchfs/internal/wire"
)

// TrackerMode selects where directory dirty state is tracked (§7.3.3).
type TrackerMode uint8

// Tracker modes.
const (
	// TrackerSwitch uses the in-network dirty set (the SwitchFS design).
	TrackerSwitch TrackerMode = iota
	// TrackerServer uses a dedicated server speaking the switch's packet
	// protocol; the server code is unchanged (Fig. 15).
	TrackerServer
	// TrackerOwner tracks each directory's state on its owner server,
	// doubling the packets on the update path (Fig. 16).
	TrackerOwner
)

// Config parameterizes one metadata server.
type Config struct {
	ID    env.NodeID
	Cores int
	Costs env.Costs
	// Ring is the shared versioned placement ring (consistent hash +
	// per-fingerprint migration overrides). All ownership decisions route
	// through it, so a control-plane override re-routes this server's
	// traffic in the same virtual instant it lands.
	Ring *ring.Ring
	// Peers lists every metadata server NodeID (including this one).
	Peers []env.NodeID
	// SwitchFor returns the switch (or tracker) responsible for a
	// fingerprint; multi-rack deployments range-partition fingerprints over
	// switches (§6.4).
	SwitchFor func(core.Fingerprint) env.NodeID
	// Coordinator is the rename/reconfiguration coordinator's NodeID.
	Coordinator env.NodeID
	WAL         wal.Log
	Tracker     TrackerMode
	// DataNodes is the deployed data-node count. When nonzero, creates
	// assign the file's content placement: a DataLoc slot list the client
	// stripes chunks across (returned at Open, §7.6).
	DataNodes int

	// Async enables asynchronous metadata updates; false degrades every
	// double-inode op to the synchronous cross-server protocol ("Baseline"
	// of Fig. 14).
	Async bool
	// Compaction enables change-log compaction before application (§5.3);
	// false applies entries one by one ("+Async" of Fig. 14).
	Compaction bool

	// PushEntries is the MTU-fill threshold of proactive change-log pushes
	// (the paper's implementation bounds per-server aggregation work to 29
	// entries, §7.5).
	PushEntries int
	// PushIdle is the change-log idle interval that triggers a push.
	PushIdle env.Duration
	// OwnerQuiesce is how long the owner waits after the last push before
	// proactively aggregating (§5.3).
	OwnerQuiesce env.Duration
	// RetryTimeout is the RPC retransmission timeout (§5.4.1).
	RetryTimeout env.Duration
	// Trace records handler/WAL/2PC/aggregation spans (nil: tracing off).
	Trace *trace.Recorder
}

// Defaults fills zero fields.
func (c *Config) Defaults() {
	if c.Cores == 0 {
		c.Cores = 4
	}
	if c.PushEntries == 0 {
		c.PushEntries = 29
	}
	if c.PushIdle == 0 {
		c.PushIdle = 200 * env.Microsecond
	}
	if c.OwnerQuiesce == 0 {
		c.OwnerQuiesce = 300 * env.Microsecond
	}
	if c.RetryTimeout == 0 {
		c.RetryTimeout = 2 * env.Millisecond
	}
}

// dirLog is one remote directory's change-log plus its protocol lock.
//
// The protocol lock is a reader–writer lock: concurrent updates to the same
// directory hold it SHARED (their appends commute — the contention-mitigation
// point of §4.1/§5.3; per-name ordering is already serialized by the target
// inode's exclusive lock), while an aggregation fetch holds it EXCLUSIVE so
// it snapshots a stable log (§5.2.2 step 6). The short qmu mutex orders the
// concurrent queue appends themselves and is never held across a park.
type dirLog struct {
	ref  core.DirRef
	lock env.RWMutex
	qmu  sync.Mutex //detlint:ignore rawgo -- Real-mode guard for queue appends; leaf section, never held across a park (uncontended under Sim)
	log  core.ChangeLog
	// walLSN maps entry ID → WAL record, for applied-marking.
	walLSN map[uint64]wal.LSN
	// idle triggers proactive pushes (§5.3).
	idle *env.Timer
	// pushing guards against concurrent pushes of the same log.
	pushing bool
	// heldBy, when nonzero, is the aggregation currently holding the
	// exclusive protocol lock pending the owner's ack (§5.2.2 step 9a).
	heldBy uint64
}

// fpState serializes aggregations per fingerprint group and blocks directory
// reads while one is in flight (§5.2.2 "Aggregation and reply").
type fpState struct {
	aggActive bool
	// lastStart is the virtual time the most recent aggregation started
	// (its remove was issued at or after this instant).
	lastStart env.Time
	// lastIncomplete records that the most recent aggregation gave up on an
	// unreachable peer: the applied state may miss acknowledged entries, so
	// reads must not serve it as the directory.
	lastIncomplete bool
	cond           env.Cond
	mu             env.Mutex
}

// commitCtx is a double-inode operation waiting for its switch leg.
type commitCtx struct {
	id      uint64
	done    *env.Future // completed by CommitAck
	lsn     wal.LSN
	dir     core.DirID
	entryID uint64
}

// aggCtx is an in-flight aggregation this server owns.
type aggCtx struct {
	id      uint64
	fp      core.Fingerprint
	expect  map[env.NodeID]bool // peers not yet replied
	logs    []aggLog
	done    *env.Future
	retries int
}

// aggLog tags a collected change-log with the server that sent it, so acks
// and exactly-once watermarks are per source.
type aggLog struct {
	from env.NodeID
	log  wire.DirLog
}

// Server is one metadata server.
type Server struct {
	cfg  Config
	env  env.Env
	node *env.Node
	kv   *kv.Store
	wal  wal.Log

	// mu guards the in-memory indexes below (never held across a park).
	mu        sync.Mutex              //detlint:ignore rawgo -- Real-mode guard for the in-memory indexes; leaf section, never held across a park
	locks     map[string]*env.RWMutex // per-inode locks, by encoded key
	clogs     map[core.DirID]*dirLog
	clogsByFP map[core.Fingerprint]map[core.DirID]*dirLog
	fps       map[core.Fingerprint]*fpState

	// Invalidation list (§5.2): append-only within a run.
	invalSeq uint64
	inval    []wire.InvalEntry
	invalSet map[core.DirID]uint64

	// Per-(source, directory) high-watermark of applied change-log entry
	// ids: the exactly-once guard of §A.1.
	applied map[appliedKey]uint64

	// dirOps tallies client operations per target directory (observability;
	// exported via DirOps for the metrics registry's hottest-directory view).
	dirOps map[core.DirID]uint64
	// fpOps tallies client operations per fingerprint group — the balancer's
	// migration-unit view of the same heat (a fingerprint is what moves).
	fpOps map[core.Fingerprint]uint64

	// busy counts in-flight client operations per fingerprint group; a
	// migration waits for the count to reach zero (FPQuiescent) before
	// copying, so no op straddles the move.
	busy map[core.Fingerprint]int
	// gates holds arrival gates for fingerprints mid-migration INTO this
	// server: requests that already route here (the ring override landed)
	// wait on the gate instead of failing fast against a not-yet-copied
	// group. UnblockFP completes the future.
	gates map[core.Fingerprint]*env.Future

	// Pending protocol contexts.
	commits    map[uint64]*commitCtx
	aggs       map[uint64]*aggCtx
	aggByFP    map[core.Fingerprint]*aggCtx
	peerAggs   map[uint64]*peerAggState
	doneAggs   map[uint64]map[env.NodeID]*wire.AggAck
	doneAggLog []uint64
	pushWait   map[core.DirID]*env.Future
	dedup      map[dedupKey]wire.Msg
	dedupLog   []dedupKey

	// Owner-side quiesce timers for proactive aggregation.
	quiesce map[core.Fingerprint]*env.Timer

	// Owner-tracker mode: fingerprints dirtied on this owner (Fig. 16).
	ownerDirty map[core.Fingerprint]bool

	// Monotonic counters.
	nextCommit   uint64
	nextEntry    uint64
	nextAgg      uint64
	nextRemove   uint64
	nextTxn      uint64
	nextTxnEntry uint64
	nextCtl      uint64

	idgen *core.IDGen

	// txns holds participant state for 2PC (rename, links, migration);
	// txnVotes/txnDones hold coordinator-side collection state; renameMu
	// serializes coordinated transactions cluster-wide (the centralized
	// rename coordinator of §5.2).
	txns       map[uint64]*txnState
	txnVotes   map[uint64]*txnVotes
	txnDones   map[uint64]*txnVotes
	txnStarted map[uint64]bool
	txnVoted   map[uint64]core.Errno
	txnLog     []uint64
	// txnDecided records coordinator-side commit decisions for the
	// participant termination protocol (TxnStatusReq), WAL-backed (with the
	// participant set) before the first decision packet leaves so a
	// restarted coordinator still answers — and re-drives — them; anything
	// absent is a presumed abort. Entries retire once every participant
	// acked the decision.
	txnDecided map[uint64]bool
	txnWAL     map[uint64]wal.LSN
	// txnRedrive holds replayed, unacknowledged commit decisions awaiting
	// re-delivery during recovery; txnRearm holds replayed, undecided
	// prepared transactions awaiting lock/vote/monitor rebuild.
	txnRedrive []txnRedrive
	txnRearm   []txnRearm
	renameMu   env.Mutex

	// ctlWait matches control-plane responses (ReadInode, ScanDir, AggNow,
	// FlushAll, CloneInval) to their callers.
	ctlWait map[uint64]*env.Future

	serving bool
	// dead marks a fail-stopped incarnation: its processes must unwind
	// instead of retrying into a restarted successor.
	dead bool
	// recovering marks §5.4.2 recovery in progress — its re-pushes and
	// forced aggregations must not cross a reconfiguration's ring remap.
	recovering bool

	Stats Stats
}

type appliedKey struct {
	src env.NodeID
	dir core.DirID
}

// txnRedrive is one commit decision rebuilt from the WAL whose acks the
// crashed incarnation never finished collecting.
type txnRedrive struct {
	txn   uint64
	parts []env.NodeID
}

// txnRearm is one prepared, undecided transaction rebuilt from the WAL.
type txnRearm struct {
	txn   uint64
	coord env.NodeID
	ops   []wire.TxnOp
	lsn   wal.LSN
}

type dedupKey struct {
	client env.NodeID
	rpc    uint64
}

// Stats counts server-side protocol activity.
type Stats struct {
	Ops          uint64
	AsyncCommits uint64
	SyncCommits  uint64
	Fallbacks    uint64
	Aggregations uint64
	AggEntries   uint64
	Pushes       uint64
	Retries      uint64
	Orphans      uint64
}

// New builds a server and registers its node with the environment.
func New(e env.Env, cfg Config) *Server {
	cfg.Defaults()
	s := &Server{
		cfg:        cfg,
		env:        e,
		kv:         kv.New(),
		wal:        cfg.WAL,
		locks:      make(map[string]*env.RWMutex),
		clogs:      make(map[core.DirID]*dirLog),
		clogsByFP:  make(map[core.Fingerprint]map[core.DirID]*dirLog),
		fps:        make(map[core.Fingerprint]*fpState),
		invalSet:   make(map[core.DirID]uint64),
		applied:    make(map[appliedKey]uint64),
		dirOps:     make(map[core.DirID]uint64),
		fpOps:      make(map[core.Fingerprint]uint64),
		busy:       make(map[core.Fingerprint]int),
		gates:      make(map[core.Fingerprint]*env.Future),
		commits:    make(map[uint64]*commitCtx),
		aggs:       make(map[uint64]*aggCtx),
		aggByFP:    make(map[core.Fingerprint]*aggCtx),
		dedup:      make(map[dedupKey]wire.Msg),
		quiesce:    make(map[core.Fingerprint]*env.Timer),
		ownerDirty: make(map[core.Fingerprint]bool),
		txns:       make(map[uint64]*txnState),
		txnVotes:   make(map[uint64]*txnVotes),
		txnDones:   make(map[uint64]*txnVotes),
		txnDecided: make(map[uint64]bool),
		txnWAL:     make(map[uint64]wal.LSN),
		ctlWait:    make(map[uint64]*env.Future),
		peerAggs:   make(map[uint64]*peerAggState),
		doneAggs:   make(map[uint64]map[env.NodeID]*wire.AggAck),
		pushWait:   make(map[core.DirID]*env.Future),
		idgen:      core.NewIDGen(uint64(cfg.ID)),
		serving:    true,
	}
	if s.wal == nil {
		s.wal = wal.NewMem()
	}
	// Seed every per-origin protocol counter from the virtual clock: a
	// restarted incarnation must never reuse its predecessor's identifier
	// space. Reused dirty-set remove sequence numbers would be rejected by
	// the switch's §5.4.1 staleness guard (or, worse, a later reuse would
	// pass it and erase live fingerprints), and reused aggregation/commit/
	// control ids would collide with the dead incarnation's still-pending
	// protocol state at peers. Time is the model's stand-in for the paper's
	// persisted epoch; one tick always separates crash from restart.
	base := uint64(e.Now())
	s.nextCommit = base
	s.nextAgg = base
	s.nextRemove = base
	s.nextCtl = base
	s.nextTxn = base
	s.node = e.AddNode(cfg.ID, env.NodeConfig{Cores: cfg.Cores, Handler: s.handle})
	s.bootstrapRoot()
	return s
}

// bootstrapRoot creates the root directory inode on its owner.
func (s *Server) bootstrapRoot() {
	root := core.RootRef()
	if s.ownerOfFP(root.FP) != s.cfg.ID {
		return
	}
	in := &core.Inode{
		Attr: core.Attr{Type: core.TypeDir, Perm: core.DefaultDirPerm, Nlink: 2},
		ID:   core.RootDirID,
	}
	s.kv.Put(root.Key.Encode(), core.EncodeInode(in))
}

// KV exposes the store for tests and recovery verification.
func (s *Server) KV() *kv.Store { return s.kv }

// WAL exposes the log for crash orchestration.
func (s *Server) WAL() wal.Log { return s.wal }

// ID returns the server's node id.
func (s *Server) ID() env.NodeID { return s.cfg.ID }

// Node returns the env node.
func (s *Server) Node() *env.Node { return s.node }

// ownerOfFP maps a fingerprint to the owning server's NodeID under the
// current ring (overrides included — a group mid-migration already answers
// with its destination).
func (s *Server) ownerOfFP(fp core.Fingerprint) env.NodeID {
	return s.cfg.Ring.OwnerNode(fp)
}

// checkOwnership rejects a client request routed here under a stale ring —
// a reconfiguration remapped the slot (and migrated its records away) while
// the request was in flight. ErrRetry makes the client re-resolve against
// the current ring, the model's stand-in for the paper's epoch check (§5.5).
func (s *Server) checkOwnership(fp core.Fingerprint) error {
	if s.ownerOfFP(fp) != s.cfg.ID {
		return core.ErrRetry
	}
	return nil
}

// ownerOfKey maps an object key to its owner.
func (s *Server) ownerOfKey(k core.Key) env.NodeID {
	return s.ownerOfFP(k.Fingerprint())
}

// lockOf returns (creating on demand) the lock of an inode key.
func (s *Server) lockOf(k core.Key) *env.RWMutex {
	ek := string(k.Encode())
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.locks[ek]
	if l == nil {
		l = &env.RWMutex{}
		s.locks[ek] = l
	}
	return l
}

// clogOf returns (creating on demand) the change-log of a remote directory.
func (s *Server) clogOf(ref core.DirRef) *dirLog {
	s.mu.Lock()
	defer s.mu.Unlock()
	dl := s.clogs[ref.ID]
	if dl == nil {
		dl = &dirLog{ref: ref, walLSN: make(map[uint64]wal.LSN)}
		s.clogs[ref.ID] = dl
		m := s.clogsByFP[ref.FP]
		if m == nil {
			m = make(map[core.DirID]*dirLog)
			s.clogsByFP[ref.FP] = m
		}
		m[ref.ID] = dl
	}
	return dl
}

// rekeyClog re-points a directory's change-log at the directory's current
// key. A rename changes a directory's key — and with it its fingerprint and
// owner — while the id (and so the clogs index slot) stays. Entries left
// under the old fingerprint would never be collected again: dirty-set
// inserts and aggregations run against the new fingerprint, so an
// acknowledged post-rename update would stay invisible to every directory
// read (the phantom-dentry divergence the lincheck harness found). Callers
// pass the request's parent ref only after its staleness checks passed — a
// stale pre-rename client must not re-key the log backwards.
func (s *Server) rekeyClog(dl *dirLog, ref core.DirRef) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if dl.ref.Key == ref.Key {
		return
	}
	if m := s.clogsByFP[dl.ref.FP]; m != nil {
		delete(m, ref.ID)
		if len(m) == 0 {
			delete(s.clogsByFP, dl.ref.FP)
		}
	}
	dl.ref = ref
	m := s.clogsByFP[ref.FP]
	if m == nil {
		m = make(map[core.DirID]*dirLog)
		s.clogsByFP[ref.FP] = m
	}
	m[ref.ID] = dl
}

// sortedClogs snapshots a change-log map ordered by directory id. Map
// iteration order is randomized per process, and any order that leaks into
// message emission (pushes, aggregation collection) breaks the simulator's
// cross-process determinism guarantee — the chaos/lincheck smoke gates diff
// two separate runs byte for byte.
func sortedClogs(m map[core.DirID]*dirLog) []*dirLog {
	out := make([]*dirLog, 0, len(m))
	for _, dl := range m {
		out = append(out, dl)
	}
	sort.Slice(out, func(i, j int) bool { return lessDirID(out[i].ref.ID, out[j].ref.ID) })
	return out
}

func lessDirID(a, b core.DirID) bool {
	for k := 0; k < len(a); k++ {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return false
}

// fpOf returns (creating on demand) the per-fingerprint aggregation gate.
func (s *Server) fpOf(fp core.Fingerprint) *fpState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.fps[fp]
	if st == nil {
		st = &fpState{}
		s.fps[fp] = st
	}
	return st
}

// handle is the env message handler: it dispatches by body type.
func (s *Server) handle(p *env.Proc, from env.NodeID, msg any) {
	pkt, ok := msg.(*wire.Packet)
	if !ok {
		return
	}
	if !s.serving {
		// A recovering server does not serve normal client requests
		// (§5.4.2), but the recovery protocols themselves — aggregation
		// fetches, change-log pushes, invalidation clones, transactions in
		// flight — must keep flowing between servers.
		switch pkt.Body.(type) {
		case *wire.LookupReq, *wire.FileReq, *wire.DirReadReq, *wire.MutateReq,
			*wire.RenameReq, *wire.LinkReq:
			return
		}
	}
	sp := s.cfg.Trace.StartSpan(p, pkt.Trace, msgName(pkt.Body), "server")
	defer sp.End()
	switch b := pkt.Body.(type) {
	case *wire.LookupReq:
		s.handleLookup(p, b)
	case *wire.FileReq:
		if b.Op == core.OpChmod {
			s.handleChmod(p, b)
		} else {
			s.handleFile(p, b)
		}
	case *wire.DirReadReq:
		s.handleDirRead(p, pkt, b)
	case *wire.MutateReq:
		s.handleMutate(p, b)
	case *wire.CommitAck:
		s.handleCommitAck(p, b)
	case *wire.CommitNotice:
		// Overflow fallback: the switch rewrote the insert packet to us —
		// we own the parent directory and apply the update synchronously.
		s.handleFallback(p, pkt, b)
	case *wire.AggFetch:
		s.handleAggFetch(p, b)
	case *wire.AggEntries:
		s.handleAggEntries(p, b)
	case *wire.AggAck:
		s.handleAggAck(p, b)
	case *wire.ChangePush:
		s.handleChangePush(p, from, b)
	case *wire.ChangePushAck:
		s.handleChangePushAck(p, b)
	case *wire.InvalBroadcast:
		s.handleInvalBroadcast(p, from, b)
	case *wire.RenameReq:
		s.handleRename(p, b)
	case *wire.LinkReq:
		s.handleLink(p, b)
	case *wire.TxnPrepare:
		s.handleTxnPrepare(p, b)
	case *wire.TxnDecision:
		s.handleTxnDecision(p, b)
	case *wire.TxnVote:
		s.handleTxnVote(b)
	case *wire.TxnDone:
		s.handleTxnDone(b)
	case *wire.TxnStatusReq:
		s.handleTxnStatus(p, b)
	case *wire.TxnStatusResp:
		s.completeCtl(b.Ctl, b)
	case *wire.ReadInodeReq:
		s.handleReadInode(p, b)
	case *wire.ScanDirReq:
		s.handleScanDir(p, b)
	case *wire.AggNowReq:
		s.handleAggNow(p, b)
	case *wire.ReadInodeResp:
		s.completeCtl(b.Ctl, b)
	case *wire.ScanDirResp:
		s.completeCtl(b.Ctl, b)
	case *wire.AggNowResp:
		s.completeCtl(b.Ctl, b)
	case *wire.CloneInvalReq:
		s.handleCloneInval(p, b)
	case *wire.CloneInvalResp:
		s.completeCtl(b.Ctl, b)
	case *wire.FlushAllReq:
		s.handleFlushAll(p, pkt.Origin, b)
	}
}

// msgName labels a handler span after the wire message it serves.
func msgName(m wire.Msg) string {
	switch m.(type) {
	case *wire.LookupReq:
		return "lookup"
	case *wire.FileReq:
		return "file"
	case *wire.DirReadReq:
		return "dirread"
	case *wire.MutateReq:
		return "mutate"
	case *wire.CommitAck:
		return "commit-ack"
	case *wire.CommitNotice:
		return "fallback"
	case *wire.AggFetch:
		return "agg:fetch"
	case *wire.AggEntries:
		return "agg:entries"
	case *wire.AggAck:
		return "agg:ack"
	case *wire.ChangePush:
		return "push"
	case *wire.ChangePushAck:
		return "push-ack"
	case *wire.RenameReq:
		return "rename"
	case *wire.LinkReq:
		return "link"
	case *wire.TxnPrepare:
		return "txn:prepare"
	case *wire.TxnDecision:
		return "txn:decision"
	case *wire.TxnVote:
		return "txn:vote"
	case *wire.TxnDone:
		return "txn:done"
	}
	return "ctl"
}

// tallyDir counts one client operation against its target directory.
func (s *Server) tallyDir(id core.DirID) {
	s.mu.Lock()
	s.dirOps[id]++
	s.mu.Unlock()
}

// DirOp is one directory's operation tally.
type DirOp struct {
	Dir core.DirID
	N   uint64
}

// DirOps returns per-directory op tallies, hottest first (ties broken by
// directory id — deterministic for the metrics snapshot).
func (s *Server) DirOps() []DirOp {
	s.mu.Lock()
	out := make([]DirOp, 0, len(s.dirOps))
	for d, n := range s.dirOps {
		out = append(out, DirOp{Dir: d, N: n})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].N != out[j].N {
			return out[i].N > out[j].N
		}
		return lessDirID(out[i].Dir, out[j].Dir)
	})
	return out
}

// completeCtl finishes a pending control-plane call.
func (s *Server) completeCtl(ctl uint64, v wire.Msg) {
	s.mu.Lock()
	fut := s.ctlWait[ctl]
	s.mu.Unlock()
	if fut != nil {
		fut.Complete(v)
	}
}

// ctlCall performs a retried control-plane round trip to a peer.
func (s *Server) ctlCall(p *env.Proc, to env.NodeID, build func(ctl uint64) wire.Msg) (wire.Msg, error) {
	s.mu.Lock()
	s.nextCtl++
	ctl := uint64(s.cfg.ID)<<40 | s.nextCtl
	fut := env.NewFuture()
	s.ctlWait[ctl] = fut
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.ctlWait, ctl)
		s.mu.Unlock()
	}()
	msg := build(ctl)
	for try := 0; try < maxAggRetries; try++ {
		if s.dead {
			break
		}
		s.reply(p, to, msg)
		if v, ok := fut.WaitTimeout(p, s.cfg.RetryTimeout); ok {
			return v.(wire.Msg), nil
		}
		s.Stats.Retries++
	}
	return nil, core.ErrTimeout
}

// reply sends a response packet straight to the client (L2 path). A dead
// incarnation sends nothing: its processes may still be unwinding after a
// fail-stop, and once a restarted successor re-registers the node id their
// stale replies would otherwise reach the network again.
func (s *Server) reply(p *env.Proc, to env.NodeID, body wire.Msg) {
	if s.dead {
		return
	}
	p.Send(to, &wire.Packet{Dst: to, Origin: s.cfg.ID, Trace: p.TraceCtx(), Body: body})
}

// respCommon stamps a response with the error and fresh invalidation
// entries (lazy invalidation piggyback, §5.2).
func (s *Server) respCommon(req *wire.ReqCommon, err error) wire.RespCommon {
	rc := wire.RespCommon{RPC: req.RPC, Err: core.ErrnoOf(err)}
	s.mu.Lock()
	rc.InvalSeqHigh = s.invalSeq
	if req.InvalSeq < s.invalSeq {
		// Entries are appended with strictly ascending Seq, so the suffix the
		// client is missing starts at a binary-searchable boundary — a linear
		// walk here is O(history) per response and dominated million-client
		// sweeps, where most requests arrive nearly caught up.
		lo := sort.Search(len(s.inval), func(i int) bool {
			return s.inval[i].Seq > req.InvalSeq
		})
		if n := len(s.inval) - lo; n > 0 {
			rc.Inval = make([]wire.InvalEntry, n)
			for j := 0; j < n; j++ {
				rc.Inval[j] = s.inval[len(s.inval)-1-j]
			}
		}
	}
	s.mu.Unlock()
	return rc
}

// checkAncestors validates the request's cached path components against the
// invalidation list (§5.2.1 step 3). Only entries the client has not yet
// consumed (sequence above the request's InvalSeq) are stale: once the
// client refreshed its cache past an entry, re-resolved components are
// current even if the directory id matches an old entry (a failed rmdir,
// for example, plants entries for a directory that still exists).
func (s *Server) checkAncestors(req *wire.ReqCommon) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, d := range req.Ancestors {
		if seq, bad := s.invalSet[d]; bad && seq > req.InvalSeq {
			return core.ErrStaleCache
		}
	}
	return nil
}

// remember caches a response for client-RPC deduplication: retransmitted
// requests replay the response instead of re-executing (§5.4.1).
const dedupWindow = 4096

func (s *Server) remember(client env.NodeID, rpc uint64, resp wire.Msg) {
	k := dedupKey{client: client, rpc: rpc}
	s.mu.Lock()
	if _, exists := s.dedup[k]; !exists {
		s.dedup[k] = resp
		s.dedupLog = append(s.dedupLog, k)
		if len(s.dedupLog) > dedupWindow {
			old := s.dedupLog[0]
			s.dedupLog = s.dedupLog[1:]
			delete(s.dedup, old)
		}
	} else {
		s.dedup[k] = resp
	}
	s.mu.Unlock()
}

// replayIfDuplicate replies with the cached response when (client, rpc) was
// already executed. inFlight reports an execution still in progress, in
// which case the duplicate is dropped (the original will answer).
//
//detlint:dedup-check
func (s *Server) replayIfDuplicate(p *env.Proc, req *wire.ReqCommon) bool {
	k := dedupKey{client: req.Client, rpc: req.RPC}
	s.mu.Lock()
	resp, ok := s.dedup[k]
	s.mu.Unlock()
	if !ok {
		return false
	}
	if resp != nil {
		s.reply(p, req.Client, resp)
	}
	return true
}

// begin marks (client, rpc) as in progress so retransmissions do not
// re-execute a mutation concurrently.
//
//detlint:dedup-check
func (s *Server) begin(req *wire.ReqCommon) bool {
	k := dedupKey{client: req.Client, rpc: req.RPC}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.dedup[k]; ok {
		return false
	}
	s.dedup[k] = nil
	s.dedupLog = append(s.dedupLog, k)
	if len(s.dedupLog) > dedupWindow {
		old := s.dedupLog[0]
		s.dedupLog = s.dedupLog[1:]
		delete(s.dedup, old)
	}
	return true
}

// appliedMark returns the exactly-once watermark for (src, dir).
func (s *Server) appliedMark(src env.NodeID, dir core.DirID) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied[appliedKey{src: src, dir: dir}]
}

func (s *Server) setAppliedMark(src env.NodeID, dir core.DirID, id uint64) {
	s.mu.Lock()
	if s.applied[appliedKey{src: src, dir: dir}] < id {
		s.applied[appliedKey{src: src, dir: dir}] = id
	}
	s.mu.Unlock()
}

// --- WAL record encoding ----------------------------------------------------

// WAL record kinds.
const (
	recCommit   uint8 = 1 // double-inode commit: inode mutation + clog entry
	recAggEntry uint8 = 2 // change-log entry applied at the directory owner
	recInode    uint8 = 3 // direct inode put/delete (sync ops, txns, mkdir)
	recDirAttr  uint8 = 4 // direct directory attribute overwrite
)

// recTxnCommit (kind 8, see recover.go for kinds 5–7) persists a 2PC commit
// decision at the coordinator before the first decision packet leaves: a
// restarted coordinator must answer an in-doubt participant's status query
// with commit, never presumed-abort, for a transaction whose decision some
// participant may already have applied. recTxnPrepare persists a
// participant's prepared op set before its vote leaves: a restarted
// participant must still be able to apply a commit decided on that vote.
// Both are marked applied once resolved (full ack / decision received).
const (
	recTxnCommit  uint8 = 8
	recTxnPrepare uint8 = 9
)

func u64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }

func encodeEntry(b []byte, dir core.DirRef, e core.LogEntry) []byte {
	b = dir.ID.AppendBinary(b)
	b = dir.Key.PID.AppendBinary(b)
	b = u64(b, uint64(len(dir.Key.Name)))
	b = append(b, dir.Key.Name...)
	b = u64(b, uint64(dir.FP))
	b = u64(b, e.ID)
	b = u64(b, uint64(e.Time))
	b = append(b, byte(e.Op), byte(e.Type))
	b = binary.BigEndian.AppendUint16(b, uint16(e.Perm))
	b = u64(b, uint64(len(e.Name)))
	b = append(b, e.Name...)
	return b
}

func decodeEntry(b []byte) (core.DirRef, core.LogEntry, []byte) {
	var ref core.DirRef
	var e core.LogEntry
	ref.ID = core.DirIDFromBytes(b)
	b = b[32:]
	ref.Key.PID = core.DirIDFromBytes(b)
	b = b[32:]
	n := binary.BigEndian.Uint64(b)
	b = b[8:]
	ref.Key.Name = string(b[:n])
	b = b[n:]
	ref.FP = core.Fingerprint(binary.BigEndian.Uint64(b))
	b = b[8:]
	e.ID = binary.BigEndian.Uint64(b)
	b = b[8:]
	e.Time = int64(binary.BigEndian.Uint64(b))
	b = b[8:]
	e.Op = core.Op(b[0])
	e.Type = core.FileType(b[1])
	e.Perm = core.Perm(binary.BigEndian.Uint16(b[2:]))
	b = b[4:]
	n = binary.BigEndian.Uint64(b)
	b = b[8:]
	e.Name = string(b[:n])
	b = b[n:]
	return ref, e, b
}
