package server

import (
	"fmt"
	"testing"
	"testing/quick"

	"switchfs/internal/core"
	"switchfs/internal/env"
	"switchfs/internal/ring"
	"switchfs/internal/wire"
)

// newTestServer builds a minimal single-node server for white-box tests.
func newTestServer(t *testing.T) (*env.Sim, *Server) {
	t.Helper()
	sim := env.NewSim(3)
	t.Cleanup(sim.Shutdown)
	s := New(sim, Config{
		ID:        100,
		Ring:      ring.New([]uint32{0}, 0, func(uint32) env.NodeID { return 100 }),
		Peers:     []env.NodeID{100},
		SwitchFor: func(core.Fingerprint) env.NodeID { return 1 },
		Async:     true, Compaction: true,
	})
	return sim, s
}

func TestCommitRecordRoundTrip(t *testing.T) {
	_, s := newTestServer(t)
	parent := core.DirRef{ID: core.DirID{1, 2, 3, 4},
		Key: core.Key{PID: core.RootDirID, Name: "p"}}
	parent.FP = parent.Key.Fingerprint()
	entry := core.LogEntry{ID: 7, Time: 99, Op: core.OpCreate, Name: "f", Type: core.TypeRegular, Perm: 0o644}
	in := &core.Inode{Attr: core.Attr{Type: core.TypeRegular, Perm: 0o644, Nlink: 1}}
	key := core.Key{PID: parent.ID, Name: "f"}

	payload := s.encodeCommit(core.OpCreate, key, parent, entry, in)
	op, gotKey, gotParent, gotEntry, gotIn, err := decodeCommit(payload)
	if err != nil {
		t.Fatal(err)
	}
	if op != core.OpCreate || gotKey != key || gotParent != parent || gotEntry != entry {
		t.Fatalf("round trip mismatch: op=%v key=%v parent=%v entry=%+v", op, gotKey, gotParent, gotEntry)
	}
	if gotIn.Attr != in.Attr {
		t.Fatalf("inode attr mismatch: %+v", gotIn.Attr)
	}
}

func TestCommitRecordRejectsGarbage(t *testing.T) {
	if _, _, _, _, _, err := decodeCommit([]byte{1, 2}); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestEntryRecordRoundTrip(t *testing.T) {
	f := func(id, tm uint64, name string) bool {
		if len(name) > 32 {
			name = name[:32]
		}
		ref := core.DirRef{ID: core.DirID{id, tm, 1, 2},
			Key: core.Key{PID: core.RootDirID, Name: "d"},
			FP:  core.FingerprintOf(core.RootDirID, "d")}
		e := core.LogEntry{ID: id, Time: int64(tm % (1 << 60)), Op: core.OpDelete,
			Name: name, Type: core.TypeRegular, Perm: 0o600}
		b := encodeEntry(nil, ref, e)
		gotRef, gotE, rest := decodeEntry(b)
		return gotRef == ref && gotE == e && len(rest) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestInodeRecordRoundTrip(t *testing.T) {
	key := core.Key{PID: core.DirID{5, 6, 7, 8}, Name: "x"}
	in := &core.Inode{Attr: core.Attr{Type: core.TypeDir, Perm: 0o700, Nlink: 2},
		ID: core.DirID{1, 1, 2, 3}}
	k2, in2, err := decodeInodeRec(encodeInodeRec(key, in))
	if err != nil || k2 != key || in2.Attr != in.Attr || in2.ID != in.ID {
		t.Fatalf("put record: key=%v err=%v", k2, err)
	}
	// Deletion marker.
	k3, in3, err := decodeInodeRec(encodeInodeRec(key, nil))
	if err != nil || k3 != key || in3 != nil {
		t.Fatalf("delete record: key=%v inode=%v err=%v", k3, in3, err)
	}
}

func TestDedupWindow(t *testing.T) {
	_, s := newTestServer(t)
	req := &wire.ReqCommon{RPC: 1, Client: 9000}
	if !s.begin(req) {
		t.Fatal("first begin refused")
	}
	if s.begin(req) {
		t.Fatal("second begin of the same rpc accepted")
	}
	resp := &wire.MutateResp{RespCommon: wire.RespCommon{RPC: 1}}
	s.remember(req.Client, req.RPC, resp)
	// The window evicts oldest entries.
	for i := 2; i < dedupWindow+10; i++ {
		s.begin(&wire.ReqCommon{RPC: uint64(i), Client: 9000})
	}
	s.mu.Lock()
	_, still := s.dedup[dedupKey{client: 9000, rpc: 1}]
	n := len(s.dedup)
	s.mu.Unlock()
	if still {
		t.Fatal("oldest entry not evicted")
	}
	if n > dedupWindow {
		t.Fatalf("dedup map grew to %d (window %d)", n, dedupWindow)
	}
}

func TestInvalListSeqSemantics(t *testing.T) {
	_, s := newTestServer(t)
	d := core.DirID{1, 2, 3, 4}
	s.addInval(d)
	// A request that has not consumed the entry is stale.
	if err := s.checkAncestors(&wire.ReqCommon{Ancestors: []core.DirID{d}}); err == nil {
		t.Fatal("stale ancestor accepted")
	}
	// A request that consumed up to the current sequence passes.
	s.mu.Lock()
	seq := s.invalSeq
	s.mu.Unlock()
	if err := s.checkAncestors(&wire.ReqCommon{InvalSeq: seq, Ancestors: []core.DirID{d}}); err != nil {
		t.Fatalf("refreshed ancestor rejected: %v", err)
	}
	// Re-invalidation bumps the sequence past the consumed point.
	s.addInval(d)
	if err := s.checkAncestors(&wire.ReqCommon{InvalSeq: seq, Ancestors: []core.DirID{d}}); err == nil {
		t.Fatal("re-invalidated ancestor accepted")
	}
}

func TestRespCommonPiggybacksInval(t *testing.T) {
	_, s := newTestServer(t)
	for i := 0; i < 5; i++ {
		s.addInval(core.DirID{uint64(i), 1, 2, 3})
	}
	rc := s.respCommon(&wire.ReqCommon{InvalSeq: 2}, nil)
	if rc.InvalSeqHigh != 5 {
		t.Fatalf("high=%d", rc.InvalSeqHigh)
	}
	if len(rc.Inval) != 3 {
		t.Fatalf("piggybacked %d entries, want 3 (seq 3..5)", len(rc.Inval))
	}
	for _, e := range rc.Inval {
		if e.Seq <= 2 {
			t.Fatalf("stale entry seq %d piggybacked", e.Seq)
		}
	}
}

func TestAppliedWatermark(t *testing.T) {
	_, s := newTestServer(t)
	d := core.DirID{9, 9, 9, 9}
	if got := s.appliedMark(200, d); got != 0 {
		t.Fatalf("fresh mark %d", got)
	}
	s.setAppliedMark(200, d, 5)
	s.setAppliedMark(200, d, 3) // regressions ignored
	if got := s.appliedMark(200, d); got != 5 {
		t.Fatalf("mark=%d, want 5", got)
	}
	// Distinct sources and directories are independent.
	if got := s.appliedMark(201, d); got != 0 {
		t.Fatalf("other source shares mark: %d", got)
	}
}

func TestLockTableReuse(t *testing.T) {
	_, s := newTestServer(t)
	k := core.Key{PID: core.RootDirID, Name: "f"}
	if s.lockOf(k) != s.lockOf(k) {
		t.Fatal("lockOf returned distinct locks for one key")
	}
	k2 := core.Key{PID: core.RootDirID, Name: "g"}
	if s.lockOf(k) == s.lockOf(k2) {
		t.Fatal("distinct keys share a lock")
	}
}

func TestClogIndexByFingerprint(t *testing.T) {
	_, s := newTestServer(t)
	mk := func(name string) core.DirRef {
		k := core.Key{PID: core.RootDirID, Name: name}
		return core.DirRef{ID: core.DirID{1, 2, 3, uint64(len(name))}, Key: k, FP: k.Fingerprint()}
	}
	a := mk("a")
	dl := s.clogOf(a)
	if s.clogOf(a) != dl {
		t.Fatal("clogOf not idempotent")
	}
	s.mu.Lock()
	byFP := s.clogsByFP[a.FP]
	s.mu.Unlock()
	if byFP[a.ID] != dl {
		t.Fatal("fingerprint index missing the log")
	}
}

func TestFileAttrKeyIsolated(t *testing.T) {
	// The hard-link attribute namespace must not collide with real parents.
	k := fileAttrKey(core.FileID(1234))
	if _, err := core.DecodeKey(k.Encode()); err != nil {
		t.Fatalf("attr key not a valid inode key: %v", err)
	}
	if k.PID == core.RootDirID {
		t.Fatal("attr key parent collides with root")
	}
	if fileAttrKey(1) == fileAttrKey(2) {
		t.Fatal("attr keys not unique per file id")
	}
	_ = fmt.Sprint(k)
}

// TestDuplicateChmodNotReexecuted pins the PR 2/4 re-execution fix: chmod
// runs behind the dedup cache (handleChmod), so a retransmitted chmod that
// arrives after a newer chmod committed replays its cached response instead
// of re-executing. Before the split out of handleFile, the duplicate
// re-appended the WAL record and snapped the permissions back to the stale
// value (caught by detlint idempotent).
func TestDuplicateChmodNotReexecuted(t *testing.T) {
	sim, s := newTestServer(t)
	parent := core.DirRef{ID: core.DirID{1, 2, 3, 4},
		Key: core.Key{PID: core.RootDirID, Name: "p"}}
	parent.FP = parent.Key.Fingerprint()
	key := core.Key{PID: parent.ID, Name: "f"}
	in := &core.Inode{Attr: core.Attr{Type: core.TypeRegular, Perm: 0o644, Nlink: 1}}
	s.kv.Put(key.Encode(), core.EncodeInode(in))

	perm := func() core.Perm {
		raw, ok := s.kv.GetView(key.Encode())
		if !ok {
			t.Fatal("inode missing")
		}
		got, err := core.DecodeInode(raw)
		if err != nil {
			t.Fatal(err)
		}
		return got.Perm
	}
	chmod := func(rpc uint64, pm core.Perm) *wire.FileReq {
		return &wire.FileReq{ReqCommon: wire.ReqCommon{RPC: rpc, Client: 9000},
			Op: core.OpChmod, Parent: parent, Name: "f", Perm: pm}
	}

	var walAfterNewer int
	sim.Spawn(100, func(p *env.Proc) {
		s.handleChmod(p, chmod(1, 0o600)) // original executes and commits
		s.handleChmod(p, chmod(2, 0o700)) // a newer chmod commits after it
		walAfterNewer = s.wal.Len()
		s.handleChmod(p, chmod(1, 0o600)) // stale retransmission of rpc 1
	})
	sim.Run()

	if got := perm(); got != 0o700 {
		t.Fatalf("stale duplicate chmod clobbered newer perm: got %o, want 700", got)
	}
	if got := s.wal.Len(); got != walAfterNewer {
		t.Fatalf("duplicate chmod re-appended WAL records: %d -> %d", walAfterNewer, got)
	}
}
