package server

import (
	"sort"

	"switchfs/internal/core"
	"switchfs/internal/env"
	"switchfs/internal/wal"
	"switchfs/internal/wire"
)

// Fingerprint-group migration (§5.5 elastic resharding). The migration unit
// is one fingerprint group: the inodes whose key hashes to the fingerprint,
// plus — for directories — their entry lists and exactly-once watermarks.
// Change-log entries FOR a migrated directory are not moved: they live at the
// servers owning the *children's* fingerprints and re-route to the new owner
// because every push recomputes the owner from the ring on each retry.
//
// The protocol is gate-and-drain, no quiesce:
//
//   - the control plane first pins the group to the destination (a ring
//     override) and installs an arrival gate there (BlockFP): requests that
//     already route to the destination wait on the gate instead of failing
//     against a not-yet-copied group;
//   - the source stops admitting new requests the instant the override lands
//     (checkOwnership fails → ErrRetry → clients re-resolve), while requests
//     admitted before it finish under their busy reference;
//   - once the source reports FPQuiescent (no busy ops, no aggregation in
//     flight, no prepared-but-undecided transaction touching the group), the
//     copy runs in one simulator event — atomic with respect to traffic —
//     and the source evicts its copy behind a WAL record;
//   - UnblockFP releases the gate and the destination serves.

// recEvict marks a fingerprint group migrated away from this server: replay
// must drop the group's records, or a restarted source would resurrect
// inodes that now live (and have advanced) on another server. Payload: the
// fingerprint, big-endian.
const recEvict uint8 = 10

// tallyFP counts one admitted client operation against its fingerprint group
// — the balancer's view of directory heat in migration units. Call sites
// tally only after admitFP succeeds: an op bounced with ErrRetry around a
// migration would otherwise count at both the old owner and, on retry, the
// new one, inflating the moved group's apparent heat and letting a retry
// storm ping-pong the same hot group between servers.
func (s *Server) tallyFP(fp core.Fingerprint) {
	s.mu.Lock()
	s.fpOps[fp]++
	s.mu.Unlock()
}

// FPOp is one fingerprint group's operation tally.
type FPOp struct {
	FP core.Fingerprint
	N  uint64
}

// FPOps returns per-group op tallies, hottest first (ties broken by
// fingerprint — deterministic for the balancer's selection).
func (s *Server) FPOps() []FPOp {
	s.mu.Lock()
	out := make([]FPOp, 0, len(s.fpOps))
	for fp, n := range s.fpOps {
		out = append(out, FPOp{FP: fp, N: n})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].N != out[j].N {
			return out[i].N > out[j].N
		}
		return out[i].FP < out[j].FP
	})
	return out
}

// ResetFPOps clears the per-group tallies. The balancer calls it after each
// pass so the next decision measures load since the last one, not history.
func (s *Server) ResetFPOps() {
	s.mu.Lock()
	s.fpOps = make(map[core.Fingerprint]uint64)
	s.mu.Unlock()
}

// fpEnter takes a busy reference on a fingerprint group: the op was admitted
// under the current ring and a migration away must wait for fpExit.
func (s *Server) fpEnter(fp core.Fingerprint) {
	s.mu.Lock()
	s.busy[fp]++
	s.mu.Unlock()
}

// fpExit drops a busy reference.
func (s *Server) fpExit(fp core.Fingerprint) {
	s.mu.Lock()
	s.busy[fp]--
	if s.busy[fp] <= 0 {
		delete(s.busy, fp)
	}
	s.mu.Unlock()
}

// BlockFP installs the arrival gate for a group migrating INTO this server:
// requests that already route here park on the gate until the copy lands.
// Called by the control plane in the same event as the ring override.
func (s *Server) BlockFP(fp core.Fingerprint) {
	s.mu.Lock()
	if s.gates[fp] == nil {
		s.gates[fp] = env.NewFuture()
	}
	s.mu.Unlock()
}

// UnblockFP releases the arrival gate (copy landed, or migration aborted and
// the override rolled back — waiters re-check ownership either way).
func (s *Server) UnblockFP(fp core.Fingerprint) {
	s.mu.Lock()
	fut := s.gates[fp]
	delete(s.gates, fp)
	s.mu.Unlock()
	if fut != nil {
		fut.Complete(nil)
	}
}

// gateWait parks on the group's arrival gate if one is installed. A wait
// longer than one retry timeout resolves to ErrRetry: the client's retry loop
// is the backpressure, and bounding the park keeps a stuck migration from
// accumulating parked handlers.
func (s *Server) gateWait(p *env.Proc, fp core.Fingerprint) error {
	s.mu.Lock()
	fut := s.gates[fp]
	s.mu.Unlock()
	if fut == nil {
		return nil
	}
	if _, ok := fut.WaitTimeout(p, s.cfg.RetryTimeout); !ok {
		return core.ErrRetry
	}
	return nil
}

// admitFP is the request-admission protocol for one fingerprint group:
// ownership under the current ring, the migration arrival gate, then
// ownership again (the gate also releases when an aborted migration rolls
// its override back). On nil return the caller holds a busy reference it
// must release with fpExit; the final check and fpEnter run in one event, so
// a migration can never observe "owner moved but no busy reference" for an
// admitted op.
func (s *Server) admitFP(p *env.Proc, fp core.Fingerprint) error {
	if err := s.checkOwnership(fp); err != nil {
		return err
	}
	if err := s.gateWait(p, fp); err != nil {
		return err
	}
	if err := s.checkOwnership(fp); err != nil {
		return err
	}
	s.fpEnter(fp)
	return nil
}

// admitFPs is admitFP over a set of groups — a transaction's fingerprint
// footprint. All-or-nothing: on nil return the caller holds one busy
// reference per group (release with exitFPs); on error it holds none. The
// final re-check pass and the fpEnter pass run in one event, exactly as in
// admitFP.
func (s *Server) admitFPs(p *env.Proc, fps []core.Fingerprint) error {
	for _, fp := range fps {
		if err := s.checkOwnership(fp); err != nil {
			return err
		}
		if err := s.gateWait(p, fp); err != nil {
			return err
		}
	}
	for _, fp := range fps {
		if err := s.checkOwnership(fp); err != nil {
			return err
		}
	}
	for _, fp := range fps {
		s.fpEnter(fp)
	}
	return nil
}

// exitFPs drops the busy references admitFPs took.
func (s *Server) exitFPs(fps []core.Fingerprint) {
	for _, fp := range fps {
		s.fpExit(fp)
	}
}

// FPQuiescent reports that nothing on this server straddles the group: no
// admitted client op holds a busy reference, no aggregation of the group is
// in flight, no prepared-but-undecided transaction touches it, and no §5.4.2
// recovery is mid-run. The migration poll loop proceeds to the copy only on
// true — and because the poll, the copy, and the eviction share one simulator
// event, the answer cannot go stale under it.
func (s *Server) FPQuiescent(fp core.Fingerprint) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.recovering || s.busy[fp] > 0 {
		return false
	}
	if st := s.fps[fp]; st != nil && st.aggActive {
		return false
	}
	return !s.preparedTxnOnFPLocked(fp)
}

// preparedTxnOnFPLocked reports whether a prepared, undecided transaction
// has an op targeting the group. Migrating under one would strand the
// prepared state: the decision would apply the ops to a store that no longer
// owns (or holds) the keys. Caller holds s.mu; the scan is order-independent
// (a pure any-match), so map iteration order cannot leak into behavior.
func (s *Server) preparedTxnOnFPLocked(fp core.Fingerprint) bool {
	for _, st := range s.txns {
		for _, op := range st.ops {
			if opFP(op) == fp {
				return true
			}
		}
	}
	return false
}

// PreparedTxnOnFPInWAL reports whether the WAL holds a prepared-but-undecided
// transaction (an unresolved recTxnPrepare record) touching the group. Unlike
// the in-memory s.txns scan, this survives a fail-stop: prepared state is
// durable, and recovery re-registers it and later applies the commit decision
// to this store — so a down server's group is NOT migratable just because its
// volatile references died. The migration control plane consults this before
// copying from a crashed source.
func (s *Server) PreparedTxnOnFPInWAL(fp core.Fingerprint) bool {
	found := false
	_ = s.wal.Replay(func(r wal.Record) error {
		if found || r.Kind != recTxnPrepare || r.Applied {
			return nil
		}
		_, _, ops := decodeTxnPrepare(r.Payload)
		for _, op := range ops {
			if opFP(op) == fp {
				found = true
				break
			}
		}
		return nil
	})
	return found
}

// opFP maps a transaction op to the fingerprint group it targets. Dentry ops
// carry only the directory id; they always ride with their directory's inode
// op on the same participant, whose fingerprint covers admission, so they map
// to fingerprint 0 — reserved, never produced by core.FingerprintOf for a
// real group — and txnFPs drops them.
func opFP(op wire.TxnOp) core.Fingerprint {
	switch op.Kind {
	case wire.TxnPutInode, wire.TxnDelInode, wire.TxnAdjustNlink:
		return op.Key.Fingerprint()
	case wire.TxnDirUpdate, wire.TxnPutDentry, wire.TxnDelDentries:
		return op.Dir.FP
	}
	return 0
}

// txnFPs returns the distinct fingerprint groups a transaction's ops and
// checks touch, sorted (deterministic admission and release order).
func txnFPs(ops []wire.TxnOp, checks []wire.TxnCheck) []core.Fingerprint {
	seen := make(map[core.Fingerprint]bool)
	var out []core.Fingerprint
	add := func(fp core.Fingerprint) {
		if fp != 0 && !seen[fp] {
			seen[fp] = true
			out = append(out, fp)
		}
	}
	for _, op := range ops {
		add(opFP(op))
	}
	for _, ck := range checks {
		add(ck.Key.Fingerprint())
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// StoredFingerprints returns the distinct fingerprints of every inode record
// in the store, sorted. Reconfiguration's convergence loop diffs this against
// the target placement to find records still to migrate.
func (s *Server) StoredFingerprints() []core.Fingerprint {
	seen := make(map[core.Fingerprint]bool)
	var out []core.Fingerprint
	s.kv.Scan(nil, func(k, v []byte) bool {
		key, err := core.DecodeKey(k)
		if err != nil {
			return true // dentry records move with their directory
		}
		fp := key.Fingerprint()
		if !seen[fp] {
			seen[fp] = true
			out = append(out, fp)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EvictMigrated drops a migrated-away group from this server's store behind
// a WAL record, and retires the group's owner-side timers and dirty marks.
// Runs in the event that copied the group out (the source is FPQuiescent).
func (s *Server) EvictMigrated(fp core.Fingerprint) {
	mustAppend(s.wal, recEvict, u64(nil, uint64(fp)))
	s.evictFP(fp)
	s.mu.Lock()
	if t := s.quiesce[fp]; t != nil {
		t.Cancel()
		delete(s.quiesce, fp)
	}
	delete(s.ownerDirty, fp)
	delete(s.fpOps, fp)
	s.mu.Unlock()
}

// evictFP deletes the group's inode records and, for directories, their
// entry lists. Shared by EvictMigrated and WAL replay (recEvict).
func (s *Server) evictFP(fp core.Fingerprint) {
	var inodeKeys [][]byte
	var dirs []core.DirID
	s.kv.Scan(nil, func(k, v []byte) bool {
		key, err := core.DecodeKey(k)
		if err != nil {
			return true
		}
		if key.Fingerprint() != fp {
			return true
		}
		inodeKeys = append(inodeKeys, append([]byte(nil), k...))
		if in, derr := core.DecodeInode(v); derr == nil && in.Type == core.TypeDir {
			dirs = append(dirs, in.ID)
		}
		return true
	})
	for _, k := range inodeKeys {
		s.kv.Delete(k)
	}
	for _, d := range dirs {
		prefix := core.EntryPrefix(d)
		var dks [][]byte
		s.kv.Scan(prefix, func(k, v []byte) bool {
			dks = append(dks, append([]byte(nil), k...))
			return true
		})
		for _, k := range dks {
			s.kv.Delete(k)
		}
	}
}

// DrainAggs waits until this server has no aggregation in flight (as owner
// or as a peer holding change-log locks) and no recovery mid-run. The wait
// re-checks liveness each step — a server that fail-stopped mid-drain loses
// its volatile protocol state with the crash, so there is nothing left to
// drain — and is bounded by the aggregation give-up budget: past it the
// stuck aggregation has itself given up on its unreachable counterpart.
// Reports whether the server reached quiescence (false: budget expired).
func (s *Server) DrainAggs(p *env.Proc) bool {
	const step = 100 * env.Microsecond
	deadline := p.Now() + env.Duration(maxAggRetries)*s.cfg.RetryTimeout
	for {
		if s.dead || s.node.Down() {
			return true
		}
		if s.AggsQuiescent() {
			return true
		}
		if p.Now() >= deadline {
			return false
		}
		p.Sleep(step)
	}
}
