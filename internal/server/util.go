package server

import (
	"encoding/binary"
	"fmt"
	"sort"

	"switchfs/internal/core"
	"switchfs/internal/env"
	"switchfs/internal/wal"
)

// mustAppend wraps WAL appends: in-memory logs cannot fail, and a file log
// that cannot persist leaves the server unable to honor its durability
// contract — crash loudly rather than acknowledge unlogged operations.
func mustAppend(l wal.Log, kind uint8, payload []byte) wal.LSN {
	lsn, err := l.Append(kind, payload)
	if err != nil {
		panic(fmt.Sprintf("server: WAL append failed: %v", err))
	}
	return lsn
}

// mustMark wraps applied-marking, same contract as mustAppend.
func mustMark(l wal.Log, lsn wal.LSN) {
	if err := l.MarkApplied(lsn); err != nil {
		panic(fmt.Sprintf("server: WAL mark failed: %v", err))
	}
}

// sortedNodeIDs snapshots a node-keyed map's keys in ascending id order: the
// peer-set counterpart of sortedClogs. Any map iteration whose order can
// reach the network (sends, RNG draws, lock acquisitions) must go through a
// sorted snapshot, or cross-run byte determinism breaks (maprange enforces
// this).
func sortedNodeIDs[V any](m map[env.NodeID]V) []env.NodeID {
	out := make([]env.NodeID, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// maxStripeWidth caps how many data slots one file stripes over: wide
// enough to spread a multi-chunk file, narrow enough that small files keep
// locality (§7.6 files are mostly under 256 KB).
const maxStripeWidth = 4

// assignDataLoc picks a file's content placement at create time: a ring
// window of data slots starting at a fingerprint-derived base. The client
// stripes chunk s to DataLoc[s mod len] (returned at Open); deployments
// without data nodes get none (metadata-only runs).
func (s *Server) assignDataLoc(key core.Key) []uint32 {
	n := s.cfg.DataNodes
	if n <= 0 {
		return nil
	}
	w := n
	if w > maxStripeWidth {
		w = maxStripeWidth
	}
	base := uint32(uint64(key.Fingerprint()) % uint64(n))
	loc := make([]uint32, w)
	for j := range loc {
		loc[j] = (base + uint32(j)) % uint32(n)
	}
	return loc
}

// fileAttrKey derives the storage key of a hard-linked file's shared
// attribute object (§5.5): a reserved parent id namespace keyed by FileID.
func fileAttrKey(id core.FileID) core.Key {
	return core.Key{
		PID:  core.DirID{^uint64(0), ^uint64(0), 0, uint64(id)},
		Name: "#attr",
	}
}

// applyNlink atomically adjusts a local attribute object's link count,
// deleting the object when it reaches zero. Link-count deltas commute, so no
// cross-server locking is needed (the same argument as §5.3's type (a)
// actions).
func (s *Server) applyNlink(p *env.Proc, key core.Key, delta int32) error {
	c := &s.cfg.Costs
	l := s.lockOf(key)
	l.Lock(p)
	defer l.Unlock()
	p.Compute(c.KVGet)
	raw, ok := s.kv.GetView(key.Encode())
	if !ok {
		return core.ErrNotExist
	}
	in, err := core.DecodeInode(raw)
	if err != nil {
		return core.ErrInvalid
	}
	n := int64(in.Nlink) + int64(delta)
	p.Compute(c.WALAppend + c.KVPut)
	if n <= 0 {
		mustAppend(s.wal, recInode, encodeInodeRec(key, nil))
		s.kv.Delete(key.Encode())
		return nil
	}
	in.Nlink = uint32(n)
	mustAppend(s.wal, recInode, encodeInodeRec(key, in))
	s.kv.Put(key.Encode(), core.EncodeInode(in))
	return nil
}

// encodeCommit serializes a recCommit WAL record: the committed double-inode
// operation, its inode image, and the deferred parent update (§5.2.1 step 4).
func (s *Server) encodeCommit(op core.Op, key core.Key, parent core.DirRef,
	entry core.LogEntry, in *core.Inode) []byte {

	b := []byte{byte(op)}
	b = key.PID.AppendBinary(b)
	b = u64(b, uint64(len(key.Name)))
	b = append(b, key.Name...)
	enc := core.EncodeInode(in)
	b = u64(b, uint64(len(enc)))
	b = append(b, enc...)
	b = encodeEntry(b, parent, entry)
	return b
}

// decodeCommit parses a recCommit record.
func decodeCommit(b []byte) (op core.Op, key core.Key, parent core.DirRef,
	entry core.LogEntry, in *core.Inode, err error) {

	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("server: corrupt commit record: %v", r)
		}
	}()
	op = core.Op(b[0])
	b = b[1:]
	key.PID = core.DirIDFromBytes(b)
	b = b[32:]
	n := binary.BigEndian.Uint64(b)
	b = b[8:]
	key.Name = string(b[:n])
	b = b[n:]
	n = binary.BigEndian.Uint64(b)
	b = b[8:]
	in, err = core.DecodeInode(b[:n])
	if err != nil {
		return
	}
	b = b[n:]
	parent, entry, _ = decodeEntry(b)
	return
}

// encodeInodeRec serializes a recInode record: a direct inode put (nil inode
// means delete).
func encodeInodeRec(key core.Key, in *core.Inode) []byte {
	var b []byte
	if in == nil {
		b = []byte{0}
	} else {
		b = []byte{1}
	}
	b = key.PID.AppendBinary(b)
	b = u64(b, uint64(len(key.Name)))
	b = append(b, key.Name...)
	if in != nil {
		b = append(b, core.EncodeInode(in)...)
	}
	return b
}

// decodeInodeRec parses a recInode record.
func decodeInodeRec(b []byte) (key core.Key, in *core.Inode, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("server: corrupt inode record: %v", r)
		}
	}()
	put := b[0] == 1
	b = b[1:]
	key.PID = core.DirIDFromBytes(b)
	b = b[32:]
	n := binary.BigEndian.Uint64(b)
	b = b[8:]
	key.Name = string(b[:n])
	b = b[n:]
	if put {
		in, err = core.DecodeInode(b)
	}
	return
}
