package server

import (
	"switchfs/internal/core"
	"switchfs/internal/env"
	"switchfs/internal/wire"
)

// handleLookup resolves one path component to directory metadata — the
// client cache-miss path (§5.2.1 step 1). Lookup takes the directory's read
// lock, so a lookup racing an rmdir waits and observes the final state
// (§5.2.3 "Discussion").
//
//detlint:ignore idempotent -- lookup is a pure read; the lock-table insert lockOf may perform is idempotent
func (s *Server) handleLookup(p *env.Proc, req *wire.LookupReq) {
	c := &s.cfg.Costs
	p.Compute(c.Parse)
	key := core.Key{PID: req.Parent, Name: req.Name}
	resp := &wire.LookupResp{}
	err := s.checkAncestors(&req.ReqCommon)
	if err == nil {
		err = s.admitFP(p, key.Fingerprint())
	}
	if err == nil {
		l := s.lockOf(key)
		l.RLock(p)
		p.Compute(c.KVGet)
		raw, ok := s.kv.GetView(key.Encode())
		if !ok {
			err = core.ErrNotExist
		} else if in, derr := core.DecodeInode(raw); derr != nil {
			err = core.ErrInvalid
		} else if in.Type != core.TypeDir {
			err = core.ErrNotDir
		} else {
			resp.Dir = in.ID
			resp.Attr = in.Attr
		}
		l.RUnlock()
		s.fpExit(key.Fingerprint())
	}
	resp.RespCommon = s.respCommon(&req.ReqCommon, err)
	s.reply(p, req.Client, resp)
}

// handleFile serves the synchronous read-only single-inode file operations:
// stat, open, close. They read the file inode in place, exactly as in a
// traditional DFS (§5.2 "Single-inode operations"). Chmod, the one FileReq
// that mutates, is dispatched to handleChmod instead.
//
//detlint:ignore idempotent -- stat/open/close are pure reads; the lock-table insert lockOf may perform is idempotent
func (s *Server) handleFile(p *env.Proc, req *wire.FileReq) {
	c := &s.cfg.Costs
	p.Compute(c.Parse)
	s.Stats.Ops++
	s.tallyDir(req.Parent.ID)
	key := core.Key{PID: req.Parent.ID, Name: req.Name}
	resp := &wire.FileResp{}
	err := s.checkAncestors(&req.ReqCommon)
	if err == nil {
		err = s.admitFP(p, key.Fingerprint())
	}
	if err == nil {
		s.tallyFP(key.Fingerprint())
		l := s.lockOf(key)
		l.RLock(p)
		p.Compute(c.KVGet)
		raw, ok := s.kv.GetView(key.Encode())
		if !ok {
			err = core.ErrNotExist
		} else if in, derr := core.DecodeInode(raw); derr != nil {
			err = core.ErrInvalid
		} else {
			switch req.Op {
			case core.OpStat, core.OpOpen, core.OpClose:
				resp.Attr = in.Attr
				resp.DataLoc = in.DataLoc
			default:
				err = core.ErrInvalid
			}
		}
		l.RUnlock()
		s.fpExit(key.Fingerprint())
	}
	resp.RespCommon = s.respCommon(&req.ReqCommon, err)
	s.reply(p, req.Client, resp)
}

// handleChmod updates a file inode's permissions in place. Chmod is the one
// FileReq that mutates durable state, so unlike its read-only siblings it
// runs behind the retransmission dedup cache: before this split, a duplicate
// chmod arriving after the original committed re-appended the WAL record and
// rewrote the inode — so a retransmitted stale chmod could clobber a newer
// chmod's permissions and ctime (caught by detlint idempotent, PR 2/4
// re-execution class; pinned by TestDuplicateChmodNotReexecuted).
func (s *Server) handleChmod(p *env.Proc, req *wire.FileReq) {
	c := &s.cfg.Costs
	p.Compute(c.Parse)
	if s.replayIfDuplicate(p, &req.ReqCommon) {
		return
	}
	if !s.begin(&req.ReqCommon) {
		return // in flight; the original execution will reply
	}
	s.Stats.Ops++
	s.tallyDir(req.Parent.ID)
	key := core.Key{PID: req.Parent.ID, Name: req.Name}
	resp := &wire.FileResp{}
	err := s.checkAncestors(&req.ReqCommon)
	if err == nil {
		err = s.admitFP(p, key.Fingerprint())
	}
	if err == nil {
		s.tallyFP(key.Fingerprint())
		l := s.lockOf(key)
		l.Lock(p)
		p.Compute(c.KVGet)
		raw, ok := s.kv.GetView(key.Encode())
		if !ok {
			err = core.ErrNotExist
		} else if in, derr := core.DecodeInode(raw); derr != nil {
			err = core.ErrInvalid
		} else {
			in.Perm = req.Perm
			in.Ctime = p.Now()
			p.Compute(c.WALAppend + c.KVPut)
			mustAppend(s.wal, recInode, append(key.Encode(), core.EncodeInode(in)...))
			s.kv.Put(key.Encode(), core.EncodeInode(in))
			resp.Attr = in.Attr
		}
		l.Unlock()
		s.fpExit(key.Fingerprint())
	}
	resp.RespCommon = s.respCommon(&req.ReqCommon, err)
	s.remember(req.Client, req.RPC, resp)
	s.reply(p, req.Client, resp)
}

// handleDirRead serves statdir and readdir (§5.2.2). The packet travelled
// through the switch, which annotated the dirty-set query result; a
// scattered directory triggers (or joins) a metadata aggregation before the
// read returns.
//
//detlint:ignore idempotent -- statdir/readdir are reads; the aggregation a re-execution may re-trigger converges to the same state
func (s *Server) handleDirRead(p *env.Proc, pkt *wire.Packet, req *wire.DirReadReq) {
	c := &s.cfg.Costs
	p.Compute(c.Parse)
	s.Stats.Ops++
	s.tallyDir(req.Dir.ID)
	resp := &wire.DirReadResp{}
	err := s.checkAncestors(&req.ReqCommon)
	if err == nil {
		err = s.admitFP(p, req.Dir.FP)
	}
	if err == nil {
		s.tallyFP(req.Dir.FP)
		scattered := false
		switch s.cfg.Tracker {
		case TrackerOwner:
			s.mu.Lock()
			scattered = s.ownerDirty[req.Dir.FP]
			s.mu.Unlock()
		default:
			scattered = pkt.DS != nil && pkt.DS.Ret
		}
		if scattered {
			// Aggregation blocks directory reads of the whole fingerprint
			// group until the deferred updates are applied. An incomplete
			// aggregation (a peer stayed down past the retry budget) may
			// miss that peer's acknowledged entries — the read must retry
			// rather than serve the partial state as the directory.
			if !s.aggregateFP(p, req.Dir.FP, nil) {
				err = core.ErrRetry
			}
		} else if !s.waitAggIdle(p, req.Dir.FP) {
			// A "normal" query can also mean an aggregation is mid-flight:
			// its dirty-set remove already fired but the collected entries
			// are not applied yet. That window is sub-RTT in the fault-free
			// case, but a crashed peer stretches it to that peer's recovery
			// time — serving immediately would return the pre-aggregation
			// state long after newer updates were acknowledged. Wait for the
			// in-flight aggregation (if any) to apply; if it gave up on an
			// unreachable peer, its partial state cannot be served either.
			err = core.ErrRetry
		}
		if err == nil {
			l := s.lockOf(req.Dir.Key)
			l.RLock(p)
			p.Compute(c.KVGet)
			raw, ok := s.kv.GetView(req.Dir.Key.Encode())
			if !ok {
				err = core.ErrNotExist
			} else if in, derr := core.DecodeInode(raw); derr != nil {
				err = core.ErrInvalid
			} else if in.Type != core.TypeDir {
				err = core.ErrNotDir
			} else {
				resp.Attr = in.Attr
				if req.Op == core.OpReadDir {
					prefix := core.EntryPrefix(in.ID)
					n := 0
					s.kv.Scan(prefix, func(k, v []byte) bool {
						name := string(k[len(prefix):])
						if de, e := core.DecodeDirEntry(name, v); e == nil {
							resp.Entries = append(resp.Entries, de)
						}
						n++
						return true
					})
					p.Compute(env.Duration(n) * c.KVScanEntry)
				}
			}
			l.RUnlock()
		}
		s.fpExit(req.Dir.FP)
	}
	resp.RespCommon = s.respCommon(&req.ReqCommon, err)
	s.reply(p, req.Client, resp)
}
