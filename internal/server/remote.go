package server

import (
	"switchfs/internal/core"
	"switchfs/internal/env"
	"switchfs/internal/wire"
)

// Control-plane helpers used by the rename/link coordinator and recovery.

// txnSrcFlag distinguishes transaction-applied directory updates from the
// coordinator's own change-log entries in the exactly-once watermark space.
const txnSrcFlag = env.NodeID(1) << 31

// nextTxnEntryID reserves a monotonically increasing id for a TxnDirUpdate
// entry; the (txn-src, dir) watermark at the participant then applies each
// update exactly once across retransmissions.
func (s *Server) nextTxnEntryID() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextTxnEntry++
	return s.nextTxnEntry
}

// readRemoteInode reads a raw inode record from its owner.
func (s *Server) readRemoteInode(p *env.Proc, owner env.NodeID, key core.Key) ([]byte, error) {
	if owner == s.cfg.ID {
		p.Compute(s.cfg.Costs.KVGet)
		// Same admission as the remote path: the group may have migrated away
		// between the caller's owner computation and this read.
		if err := s.admitFP(p, key.Fingerprint()); err != nil {
			return nil, err
		}
		raw, ok := s.kv.Get(key.Encode())
		s.fpExit(key.Fingerprint())
		if !ok {
			return nil, core.ErrNotExist
		}
		return raw, nil
	}
	v, err := s.ctlCall(p, owner, func(ctl uint64) wire.Msg {
		return &wire.ReadInodeReq{Ctl: ctl, From: s.cfg.ID, Key: key}
	})
	if err != nil {
		return nil, err
	}
	resp := v.(*wire.ReadInodeResp)
	if resp.Err != core.ErrnoOK {
		return nil, resp.Err.Err()
	}
	return resp.Raw, nil
}

func (s *Server) handleReadInode(p *env.Proc, req *wire.ReadInodeReq) {
	p.Compute(s.cfg.Costs.Parse + s.cfg.Costs.KVGet)
	resp := &wire.ReadInodeResp{Ctl: req.Ctl}
	// Admission as for client ops: a read routed under a stale ring (or
	// racing an inbound migration copy) must answer retry — answering
	// ErrNotExist from a store the group just left would fail a rename
	// against a file that exists.
	if err := s.admitFP(p, req.Key.Fingerprint()); err != nil {
		resp.Err = core.ErrnoOf(err)
		s.reply(p, req.From, resp)
		return
	}
	raw, ok := s.kv.Get(req.Key.Encode())
	s.fpExit(req.Key.Fingerprint())
	if !ok {
		resp.Err = core.ErrnoNotExist
	} else {
		resp.Raw = raw
	}
	s.reply(p, req.From, resp)
}

// collectDentries fetches a directory's full entry list from its owner and
// converts it into dentry-put transaction ops for the new owner. fp is the
// fingerprint of the directory's own key, validated by the remote owner
// against the ring.
func (s *Server) collectDentries(p *env.Proc, owner env.NodeID, dir core.DirID,
	fp core.Fingerprint) ([]wire.TxnOp, error) {

	var entries []core.DirEntry
	if owner == s.cfg.ID {
		prefix := core.EntryPrefix(dir)
		s.kv.Scan(prefix, func(k, v []byte) bool {
			name := string(k[len(prefix):])
			if de, err := core.DecodeDirEntry(name, v); err == nil {
				entries = append(entries, de)
			}
			return true
		})
	} else {
		v, err := s.ctlCall(p, owner, func(ctl uint64) wire.Msg {
			return &wire.ScanDirReq{Ctl: ctl, From: s.cfg.ID, Dir: dir, FP: fp}
		})
		if err != nil {
			return nil, err
		}
		resp := v.(*wire.ScanDirResp)
		if resp.Err != core.ErrnoOK {
			return nil, resp.Err.Err()
		}
		entries = resp.Entries
	}
	ops := make([]wire.TxnOp, 0, len(entries))
	for _, e := range entries {
		ops = append(ops, wire.TxnOp{
			Kind:  wire.TxnPutDentry,
			Dir:   core.DirRef{ID: dir},
			Entry: core.LogEntry{Name: e.Name, Type: e.Type, Perm: e.Perm},
		})
	}
	return ops, nil
}

func (s *Server) handleScanDir(p *env.Proc, req *wire.ScanDirReq) {
	c := &s.cfg.Costs
	p.Compute(c.Parse)
	resp := &wire.ScanDirResp{Ctl: req.Ctl}
	// Fingerprint 0 is reserved — core.FingerprintOf never produces it for a
	// real group — so the zero value soundly marks control-plane scans that
	// opt out of migration admission.
	if req.FP != 0 {
		if err := s.admitFP(p, req.FP); err != nil {
			resp.Err = core.ErrnoOf(err)
			s.reply(p, req.From, resp)
			return
		}
		defer s.fpExit(req.FP)
	}
	prefix := core.EntryPrefix(req.Dir)
	n := 0
	s.kv.Scan(prefix, func(k, v []byte) bool {
		name := string(k[len(prefix):])
		if de, err := core.DecodeDirEntry(name, v); err == nil {
			resp.Entries = append(resp.Entries, de)
		}
		n++
		return true
	})
	p.Compute(env.Duration(n) * c.KVScanEntry)
	s.reply(p, req.From, resp)
}

// remoteAggregate makes fp's owner aggregate the group now. An incomplete
// aggregation (unreachable peer) surfaces as ErrRetry: the caller's
// transaction must not serialize against state that may be missing
// acknowledged updates.
func (s *Server) remoteAggregate(p *env.Proc, owner env.NodeID, fp core.Fingerprint) error {
	if owner == s.cfg.ID {
		if !s.aggregateFP(p, fp, nil) { // the arrived-time rule gives freshness
			return core.ErrRetry
		}
		return nil
	}
	v, err := s.ctlCall(p, owner, func(ctl uint64) wire.Msg {
		return &wire.AggNowReq{Ctl: ctl, From: s.cfg.ID, FP: fp}
	})
	if err != nil {
		return err
	}
	if v.(*wire.AggNowResp).Incomplete {
		return core.ErrRetry
	}
	return nil
}

func (s *Server) handleAggNow(p *env.Proc, req *wire.AggNowReq) {
	complete := s.aggregateFP(p, req.FP, nil)
	s.reply(p, req.From, &wire.AggNowResp{Ctl: req.Ctl, Incomplete: !complete})
}

// broadcastInval plants directories in every peer's invalidation list and
// waits for acknowledgments (rmdir/rename/chmod of directories, §5.2).
func (s *Server) broadcastInval(p *env.Proc, dirs []core.DirID) {
	for _, d := range dirs {
		s.addInval(d)
	}
	for _, peer := range s.cfg.Peers {
		if peer != s.cfg.ID {
			s.reply(p, peer, &wire.InvalBroadcast{From: s.cfg.ID, Dirs: dirs})
		}
	}
}

// handleTxnVote collects a prepare vote at the coordinator.
func (s *Server) handleTxnVote(v *wire.TxnVote) {
	s.mu.Lock()
	tv := s.txnVotes[v.Txn]
	if tv == nil || !tv.expect[v.From] {
		s.mu.Unlock()
		return
	}
	delete(tv.expect, v.From)
	if v.Err != core.ErrnoOK && tv.err == nil {
		tv.err = v.Err.Err()
	}
	rest := len(tv.expect)
	s.mu.Unlock()
	if rest == 0 {
		tv.done.Complete(nil)
	}
}

// handleTxnDone collects a decision ack at the coordinator.
func (s *Server) handleTxnDone(d *wire.TxnDone) {
	s.mu.Lock()
	td := s.txnDones[d.Txn]
	if td == nil || !td.expect[d.From] {
		s.mu.Unlock()
		return
	}
	delete(td.expect, d.From)
	rest := len(td.expect)
	s.mu.Unlock()
	if rest == 0 {
		td.done.Complete(nil)
	}
}
