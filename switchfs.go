// Package switchfs is a reproduction of "SwitchFS: Asynchronous Metadata
// Updates for Distributed Filesystems with In-Network Coordination"
// (EuroSys 2026): a POSIX-style distributed filesystem metadata service that
// defers directory updates into per-server change-logs and coordinates their
// visibility through an in-network dirty set hosted on a programmable-switch
// model.
//
// The package exposes a deployment facade over the internal machinery:
//
//	env := switchfs.NewSimEnv(42)                   // deterministic simulator
//	fs, err := switchfs.New(env, switchfs.Config{Servers: 8})
//	fs.RunClient(0, func(p *switchfs.Proc, c *switchfs.Client) {
//	    c.Mkdir(p, "/data", 0)
//	    c.Create(p, "/data/hello", 0)
//	})
//
// Under env.NewReal() the same protocol code runs on goroutines and the wall
// clock. See DESIGN.md for the architecture and EXPERIMENTS.md for the
// paper-reproduction results.
package switchfs

import (
	"switchfs/internal/client"
	"switchfs/internal/cluster"
	"switchfs/internal/core"
	"switchfs/internal/env"
	"switchfs/internal/server"
)

// Re-exported types so applications need only this package.
type (
	// Proc is the execution context of filesystem operations.
	Proc = env.Proc
	// Client is the LibFS handle.
	Client = client.Client
	// Env is the runtime (simulated or real).
	Env = env.Env
	// Attr is a file or directory attribute block.
	Attr = core.Attr
	// DirEntry is one directory-listing entry.
	DirEntry = core.DirEntry
	// Perm is a POSIX permission word.
	Perm = core.Perm
)

// Filesystem errors (aliases of internal/core's values).
var (
	ErrExist    = core.ErrExist
	ErrNotExist = core.ErrNotExist
	ErrNotEmpty = core.ErrNotEmpty
	ErrNotDir   = core.ErrNotDir
	ErrIsDir    = core.ErrIsDir
	ErrInvalid  = core.ErrInvalid
	ErrLoop     = core.ErrLoop
	ErrTimeout  = core.ErrTimeout
)

// Config sizes a SwitchFS deployment.
type Config struct {
	// Servers is the metadata server count (default 8, the paper's setup).
	Servers int
	// CoresPerServer models each server's CPU (default 4).
	CoresPerServer int
	// Clients is the LibFS pool size (default 1).
	Clients int
	// Switches range-partitions fingerprints over multiple spine switches
	// (default 1).
	Switches int
	// DataNodes adds data servers for end-to-end workloads (default 0).
	DataNodes int
}

// FS is a deployed SwitchFS cluster.
type FS struct {
	c *cluster.Cluster
}

// NewSimEnv builds the deterministic discrete-event runtime used by tests
// and benchmarks; identical seeds give identical executions.
func NewSimEnv(seed int64) *env.Sim { return env.NewSim(seed) }

// NewRealEnv builds the goroutine/wall-clock runtime used by the examples
// and daemons.
func NewRealEnv() *env.Real { return env.NewReal() }

// New deploys a cluster (servers, switch(es), clients) on the environment.
func New(e Env, cfg Config) (*FS, error) {
	opts := cluster.Options{
		Servers:        cfg.Servers,
		CoresPerServer: cfg.CoresPerServer,
		Clients:        cfg.Clients,
		Switches:       cfg.Switches,
		DataNodes:      cfg.DataNodes,
	}
	if _, isSim := e.(*env.Sim); isSim {
		opts.Costs = env.DefaultCosts()
	} else {
		opts.Costs = env.ZeroCosts()
	}
	return &FS{c: cluster.New(e, opts)}, nil
}

// Client returns the i-th LibFS client.
func (f *FS) Client(i int) *Client { return f.c.Client(i) }

// RunClient runs fn as a process bound to client i. Under the simulated
// environment it drives the simulation until fn completes; under the real
// environment it returns after spawning (synchronize within fn).
func (f *FS) RunClient(i int, fn func(p *Proc, c *Client)) {
	f.c.Run(i, fn)
}

// CrashServer fail-stops metadata server i (its WAL survives).
func (f *FS) CrashServer(i int) { f.c.CrashServer(i) }

// RecoverServer restarts server i from its WAL and runs §5.4.2 recovery.
func (f *FS) RecoverServer(i int) { f.c.RecoverServer(i) }

// CrashSwitch clears all in-network state; RecoverSwitch restores
// consistency by flushing every change-log (§5.4.2).
func (f *FS) CrashSwitch()   { f.c.CrashSwitch() }
func (f *FS) RecoverSwitch() { f.c.RecoverSwitch() }

// Cluster exposes the underlying deployment for advanced use (fault
// injection, statistics, preloading).
func (f *FS) Cluster() *cluster.Cluster { return f.c }

// Servers returns the deployed metadata servers (statistics access).
func (f *FS) Servers() []*server.Server { return f.c.Servers }
