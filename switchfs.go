// Package switchfs is a reproduction of "SwitchFS: Asynchronous Metadata
// Updates for Distributed Filesystems with In-Network Coordination"
// (EuroSys 2026): a POSIX-style distributed filesystem metadata service that
// defers directory updates into per-server change-logs and coordinates their
// visibility through an in-network dirty set hosted on a programmable-switch
// model.
//
// The package exposes an os-style deployment facade over the internal
// machinery. A deployment is sized with functional options and driven
// through bound sessions:
//
//	env := switchfs.NewSimEnv(42)                   // deterministic simulator
//	fs, err := switchfs.New(env, switchfs.WithServers(8), switchfs.WithClients(4))
//	fs.RunSession(0, func(s *switchfs.Session) {
//	    s.Mkdir("/data", 0)
//	    s.Create("/data/hello", 0)
//	    attr, _ := s.StatDir("/data")
//	    _ = attr.Size // 2 — deferred updates aggregated on read
//	})
//
// Every operation returns a *PathError (or *LinkError for two-path
// operations) wrapping one of the package's sentinel errors, so callers
// dispatch with errors.Is(err, switchfs.ErrNotExist) exactly as they would
// against package os. Content access goes through a *File handle returned by
// Session.Open, which routes reads and writes to the deployment's data
// nodes.
//
// Under env.NewReal() the same protocol code runs on goroutines and the wall
// clock; Session.Open and friends block the calling goroutine. See DESIGN.md
// for the architecture and EXPERIMENTS.md for the paper-reproduction
// results.
package switchfs

import (
	"switchfs/internal/client"
	"switchfs/internal/cluster"
	"switchfs/internal/core"
	"switchfs/internal/env"
	"switchfs/internal/server"
)

// Re-exported types so applications need only this package.
type (
	// Proc is the execution context of filesystem operations. Applications
	// normally never see it: sessions bind one internally. It remains
	// exported for advanced harnesses that drive internal packages.
	Proc = env.Proc
	// Client is the raw LibFS handle (advanced use; sessions wrap it).
	Client = client.Client
	// Env is the runtime (simulated or real).
	Env = env.Env
	// Attr is a file or directory attribute block.
	Attr = core.Attr
	// DirEntry is one directory-listing entry.
	DirEntry = core.DirEntry
	// Perm is a POSIX permission word.
	Perm = core.Perm
	// FileType distinguishes files, directories and symlinks.
	FileType = core.FileType
)

// File types (aliases of internal/core's values).
const (
	TypeRegular = core.TypeRegular
	TypeDir     = core.TypeDir
	TypeSymlink = core.TypeSymlink
)

// FS is a deployed SwitchFS cluster.
type FS struct {
	c *cluster.Cluster
}

// NewSimEnv builds the deterministic discrete-event runtime used by tests
// and benchmarks; identical seeds give identical executions.
func NewSimEnv(seed int64) *env.Sim { return env.NewSim(seed) }

// NewRealEnv builds the goroutine/wall-clock runtime used by the examples
// and daemons.
func NewRealEnv() *env.Real { return env.NewReal() }

// New deploys a cluster (servers, switch(es), clients, data nodes) on the
// environment. Options override the paper's evaluation defaults (§7.1):
// eight 4-core metadata servers, one switch, one client, no data nodes.
func New(e Env, opts ...Option) (*FS, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	copts := cluster.Options{
		Servers:         cfg.servers,
		CoresPerServer:  cfg.coresPerServer,
		Clients:         cfg.clients,
		Switches:        cfg.switches,
		DataNodes:       cfg.dataNodes,
		DataReplication: cfg.dataReplication,
		RetryTimeout:    cfg.retryTimeout,
	}
	if _, isSim := e.(*env.Sim); isSim {
		copts.Costs = env.DefaultCosts()
	} else {
		copts.Costs = env.ZeroCosts()
	}
	return &FS{c: cluster.New(e, copts)}, nil
}

// Session returns an unbound session for client i (mod the client pool).
// Each operation dispatches its own process on the client's node and blocks
// until completion — under the simulated environment it drives the
// simulation, under the real environment it waits on the spawned goroutine.
// Use RunSession to amortize that dispatch over many operations.
func (f *FS) Session(i int) *Session {
	return &Session{fs: f, cl: f.c.Client(i)}
}

// RunSession runs fn with a session bound to client i: fn executes as one
// process on the client's node, and every operation on the session runs in
// that process. Under the simulated environment RunSession drives the
// simulation until fn completes; under the real environment it blocks the
// caller until fn returns.
func (f *FS) RunSession(i int, fn func(s *Session)) {
	done := make(chan struct{})
	f.c.Env.Spawn(f.c.Client(i).ID(), func(p *env.Proc) {
		fn(&Session{fs: f, cl: f.c.Client(i), p: p})
		close(done)
	})
	if s, ok := f.c.Env.(*env.Sim); ok {
		s.Run()
		select {
		case <-done:
		default:
			panic("switchfs: simulation drained before the session finished (deadlock?)")
		}
		return
	}
	<-done
}

// RunSessions runs fn(i, session) concurrently for every i in [0, n): each
// invocation executes as its own process on client i's node (mod the client
// pool), so the sessions genuinely interleave — under the simulated
// environment in deterministic virtual time. RunSessions returns when every
// fn has completed. Checking harnesses use it to drive concurrent histories
// through the public Session API.
func (f *FS) RunSessions(n int, fn func(i int, s *Session)) {
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		i := i
		cl := f.c.Client(i)
		f.c.Env.Spawn(cl.ID(), func(p *env.Proc) {
			fn(i, &Session{fs: f, cl: cl, p: p})
			done <- struct{}{}
		})
	}
	if s, ok := f.c.Env.(*env.Sim); ok {
		s.Run()
		for i := 0; i < n; i++ {
			select {
			case <-done:
			default:
				panic("switchfs: simulation drained before every session finished (deadlock?)")
			}
		}
		return
	}
	for i := 0; i < n; i++ {
		<-done
	}
}

// CrashServer fail-stops metadata server i (its WAL survives).
func (f *FS) CrashServer(i int) { f.c.CrashServer(i) }

// RecoverServer restarts server i from its WAL and runs §5.4.2 recovery.
func (f *FS) RecoverServer(i int) { f.c.RecoverServer(i) }

// CrashSwitch clears all in-network state; RecoverSwitch restores
// consistency by flushing every change-log (§5.4.2).
func (f *FS) CrashSwitch()   { f.c.CrashSwitch() }
func (f *FS) RecoverSwitch() { f.c.RecoverSwitch() }

// CrashDataNode fail-stops data node i (its volatile chunk store is lost;
// surviving replicas carry the durability). RecoverDataNode restarts it and
// re-replicates its stripes from the peers before it serves again.
func (f *FS) CrashDataNode(i int)   { f.c.CrashDataNode(i) }
func (f *FS) RecoverDataNode(i int) { f.c.RecoverDataNode(i) }

// Cluster exposes the underlying deployment for advanced use (fault
// injection, statistics, preloading, workload harnesses).
func (f *FS) Cluster() *cluster.Cluster { return f.c }

// Servers returns the deployed metadata servers (statistics access).
func (f *FS) Servers() []*server.Server { return f.c.Servers }
